//! # simos — a simulated operating-system substrate
//!
//! The Desiccant paper ([EuroSys '24]) is, at its core, a story about
//! *pages*: which physical pages a frozen FaaS instance keeps resident,
//! which of them hold only dead objects, and how a freeze-aware memory
//! manager can hand them back to the operating system. Reproducing the
//! paper therefore requires an operating-system memory model that is
//! faithful at page granularity, even though no real `mmap` is issued.
//!
//! This crate provides that model:
//!
//! * [`mem::AddressSpace`] — a per-process virtual address space made of
//!   [`mem::Mapping`]s, each tracking commit/resident/dirty/swap state
//!   per 4 KiB page, with `mmap`/`munmap`/`mprotect` and an
//!   `madvise(MADV_DONTNEED)`-style [`mem::AddressSpace::release`].
//! * [`system::System`] — the machine: all address spaces plus a shared
//!   file page cache, so that file-backed mappings (shared libraries)
//!   are correctly shared between processes.
//! * [`metrics`] — USS / RSS / PSS and `smaps`/`pmap`-style reports,
//!   computed exactly as the paper measures them (§3.1).
//! * [`clock`] — virtual time; the whole reproduction is a deterministic
//!   discrete-time simulation.
//! * [`cpu`] — cgroup-style CPU accounting used by Desiccant's
//!   reclamation-cost profiles (§4.5.2).
//! * [`swap`] — a swap device used by the paper's swapping baseline
//!   (§5.6).
//! * [`cost`] — the latency cost model for page faults and swap-ins.
//!
//! # Examples
//!
//! ```
//! use simos::mem::{MappingKind, Prot};
//! use simos::system::System;
//!
//! let mut sys = System::new();
//! let pid = sys.spawn_process();
//! let addr = sys
//!     .mmap(pid, 1 << 20, MappingKind::Anonymous, Prot::READ_WRITE)
//!     .unwrap();
//! // Nothing is resident until touched.
//! assert_eq!(sys.rss(pid), 0);
//! sys.touch(pid, addr, 64 * 1024, true).unwrap();
//! assert_eq!(sys.rss(pid), 64 * 1024);
//! // An `madvise(DONTNEED)`-style release returns the pages to the OS.
//! sys.release(pid, addr, 64 * 1024).unwrap();
//! assert_eq!(sys.rss(pid), 0);
//! ```
//!
//! [EuroSys '24]: https://doi.org/10.1145/3627703.3629579

#![forbid(unsafe_code)]

pub mod cast;
pub mod clock;
pub mod cost;
pub mod cpu;
pub mod error;
pub mod mem;
pub mod metrics;
pub mod swap;
pub mod system;

pub use clock::{SimDuration, SimTime};
pub use error::{SimOsError, SimOsResult};
pub use mem::{AddressSpace, MappingKind, Prot, VirtAddr, PAGE_SIZE};
pub use system::{FileId, Pid, System};
