//! Cgroup-style CPU accounting.
//!
//! Desiccant's selection policy needs the *accumulated CPU time* of a
//! reclamation, where the cgroup's CPU allocation can change while the
//! reclamation runs: the platform gives reclamation only idle CPU and
//! shrinks its share when new requests arrive (§4.5.2). The paper's
//! worked example: a 10 ms reclamation with 0.5 CPUs for the first 3 ms
//! and 0.25 CPUs for the remaining 7 ms accumulates
//! `0.5·3 + 0.25·7 = 3.25 ms`.

use crate::clock::SimDuration;

/// A sequence of `(wall duration, CPU fraction)` segments.
///
/// # Examples
///
/// ```
/// use simos::cpu::CpuTimeline;
/// use simos::SimDuration;
///
/// let mut t = CpuTimeline::new();
/// t.push(SimDuration::from_millis(3), 0.5);
/// t.push(SimDuration::from_millis(7), 0.25);
/// assert_eq!(t.accumulated_cpu_time().as_millis_f64(), 3.25);
/// assert_eq!(t.wall_time().as_millis_f64(), 10.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CpuTimeline {
    segments: Vec<(SimDuration, f64)>,
}

impl CpuTimeline {
    /// Creates an empty timeline.
    pub fn new() -> CpuTimeline {
        CpuTimeline::default()
    }

    /// Appends a segment of `wall` wall-clock time at `cpus` CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is negative or not finite.
    pub fn push(&mut self, wall: SimDuration, cpus: f64) {
        assert!(cpus.is_finite() && cpus >= 0.0, "invalid CPU count: {cpus}");
        self.segments.push((wall, cpus));
    }

    /// Total wall-clock time covered.
    pub fn wall_time(&self) -> SimDuration {
        self.segments
            .iter()
            .fold(SimDuration::ZERO, |acc, (d, _)| acc + *d)
    }

    /// Accumulated CPU time: `Σ wallᵢ · cpusᵢ`.
    pub fn accumulated_cpu_time(&self) -> SimDuration {
        let ns: f64 = self
            .segments
            .iter()
            .map(|(d, c)| d.as_nanos() as f64 * c)
            .sum();
        SimDuration::from_nanos(ns.round() as u64)
    }

    /// Number of segments recorded.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

/// Utilization accounting for a fixed pool of cores over simulated time.
///
/// The FaaS platform uses this to report the Figure 9c CPU-utilization
/// series: every busy interval on a core is accumulated, and
/// utilization over a window is `busy_core_time / (cores · window)`.
#[derive(Debug, Clone)]
pub struct CoreAccounting {
    cores: f64,
    busy_core_ns: f64,
}

impl CoreAccounting {
    /// Creates accounting for a machine with `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not positive.
    pub fn new(cores: f64) -> CoreAccounting {
        assert!(cores > 0.0, "core count must be positive");
        CoreAccounting {
            cores,
            busy_core_ns: 0.0,
        }
    }

    /// Records `wall` of busy time at `cpus` concurrent CPUs.
    pub fn record(&mut self, wall: SimDuration, cpus: f64) {
        self.busy_core_ns += wall.as_nanos() as f64 * cpus;
    }

    /// Accumulated busy core time.
    pub fn busy_core_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.busy_core_ns.round() as u64)
    }

    /// Mean utilization (0..=1) over a window of `window` wall time.
    pub fn utilization_over(&self, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        (self.busy_core_ns / (self.cores * window.as_nanos() as f64)).min(1.0)
    }

    /// The configured core count.
    pub fn cores(&self) -> f64 {
        self.cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_accumulates_3_25_ms() {
        let mut t = CpuTimeline::new();
        t.push(SimDuration::from_millis(3), 0.5);
        t.push(SimDuration::from_millis(7), 0.25);
        assert_eq!(t.accumulated_cpu_time().as_millis_f64(), 3.25);
    }

    #[test]
    fn empty_timeline_is_zero() {
        let t = CpuTimeline::new();
        assert_eq!(t.wall_time(), SimDuration::ZERO);
        assert_eq!(t.accumulated_cpu_time(), SimDuration::ZERO);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut acc = CoreAccounting::new(4.0);
        acc.record(SimDuration::from_secs(10), 2.0);
        assert!((acc.utilization_over(SimDuration::from_secs(10)) - 0.5).abs() < 1e-9);
        // Over-reporting clamps at 1.
        acc.record(SimDuration::from_secs(100), 40.0);
        assert_eq!(acc.utilization_over(SimDuration::from_secs(10)), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid CPU count")]
    fn negative_cpus_rejected() {
        CpuTimeline::new().push(SimDuration::from_millis(1), -1.0);
    }
}
