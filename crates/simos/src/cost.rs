//! Latency cost model for memory events.
//!
//! The paper's §5.6 quantifies the price of giving pages back: after a
//! reclamation the next executions re-fault released pages (≈8.3 % mean
//! overhead), and the swap baseline is far worse (2.37× slower for
//! `sort`) because swap-ins hit the device. This module centralizes
//! those unit costs so the simulation charges them consistently.

use crate::clock::SimDuration;
use crate::mem::TouchOutcome;

/// Unit costs of memory events.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost to zero-fill-fault one anonymous page.
    pub zero_fill_fault: SimDuration,
    /// Cost to fault one file page from the page cache.
    pub file_fault: SimDuration,
    /// Cost to bring one page back from the swap device.
    pub swap_in: SimDuration,
    /// CPU cost (per page) of releasing pages back to the OS.
    pub release_per_page: SimDuration,
}

impl Default for CostModel {
    /// Defaults roughly matching a 2019-era Xeon server with SSD swap:
    /// ~1.5 µs zero-fill, ~0.8 µs minor file fault, ~25 µs swap-in, and
    /// ~0.3 µs per released page (`madvise` batching amortized).
    fn default() -> CostModel {
        CostModel {
            zero_fill_fault: SimDuration::from_nanos(1_500),
            file_fault: SimDuration::from_nanos(800),
            swap_in: SimDuration::from_micros(25),
            release_per_page: SimDuration::from_nanos(300),
        }
    }
}

impl CostModel {
    /// Total latency charged for a touch outcome.
    pub fn touch_cost(&self, out: TouchOutcome) -> SimDuration {
        self.zero_fill_fault * out.zero_fill_faults
            + self.file_fault * out.file_faults
            + self.swap_in * out.swap_ins
    }

    /// Latency charged for releasing `bytes` back to the OS.
    pub fn release_cost(&self, bytes: u64) -> SimDuration {
        self.release_per_page * (bytes / crate::mem::PAGE_SIZE)
    }
}

impl snapshot::Snapshot for CostModel {
    fn snap(&self, w: &mut snapshot::Writer) {
        let Self {
            zero_fill_fault,
            file_fault,
            swap_in,
            release_per_page,
        } = self;
        zero_fill_fault.snap(w);
        file_fault.snap(w);
        swap_in.snap(w);
        release_per_page.snap(w);
    }

    fn restore(r: &mut snapshot::Reader<'_>) -> Result<CostModel, snapshot::SnapError> {
        Ok(CostModel {
            zero_fill_fault: SimDuration::restore(r)?,
            file_fault: SimDuration::restore(r)?,
            swap_in: SimDuration::restore(r)?,
            release_per_page: SimDuration::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_cost_weights_fault_kinds() {
        let m = CostModel::default();
        let out = TouchOutcome {
            zero_fill_faults: 10,
            file_faults: 5,
            swap_ins: 2,
        };
        let expected = m.zero_fill_fault * 10 + m.file_fault * 5 + m.swap_in * 2;
        assert_eq!(m.touch_cost(out), expected);
    }

    #[test]
    fn swap_in_dominates_refault() {
        let m = CostModel::default();
        assert!(m.swap_in > m.zero_fill_fault * 10);
    }

    #[test]
    fn release_cost_scales_with_pages() {
        let m = CostModel::default();
        assert_eq!(
            m.release_cost(crate::mem::PAGE_SIZE * 100),
            m.release_per_page * 100
        );
        assert_eq!(m.release_cost(0), SimDuration::ZERO);
    }
}
