//! Error types for the simulated OS.

use std::fmt;

use crate::mem::VirtAddr;
use crate::system::Pid;

/// Result alias used across the crate.
pub type SimOsResult<T> = Result<T, SimOsError>;

/// Errors produced by simulated system calls.
///
/// These mirror the failure modes of the real calls (`EINVAL`,
/// `ENOMEM`, `EFAULT`, `ESRCH`) closely enough that callers exercise
/// the same error-handling paths a real runtime would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimOsError {
    /// The requested range is not page-aligned or has zero length.
    BadAlignment { addr: u64, len: u64 },
    /// The address range does not lie inside a single mapping.
    UnmappedRange { addr: VirtAddr, len: u64 },
    /// The access violates the mapping's protection (e.g. a write to a
    /// `PROT_NONE` region).
    ProtectionViolation { addr: VirtAddr },
    /// No such process.
    NoSuchProcess(Pid),
    /// No such file in the file registry.
    NoSuchFile(u64),
    /// The address space cannot fit the requested mapping.
    OutOfAddressSpace { requested: u64 },
    /// A fixed-address mapping would overlap an existing mapping.
    MappingOverlap { addr: VirtAddr },
}

impl SimOsError {
    /// Whether this error indicates a corrupted simulation rather than
    /// a condition a robust caller can absorb. `NoSuchProcess` (races
    /// with teardown) and `OutOfAddressSpace` (resource exhaustion, the
    /// moral equivalent of `ENOMEM`) are survivable; the rest mean the
    /// caller handed the OS a broken address or file and there is
    /// nothing sensible to retry.
    pub fn is_fatal(&self) -> bool {
        !matches!(
            self,
            SimOsError::NoSuchProcess(_) | SimOsError::OutOfAddressSpace { .. }
        )
    }
}

impl fmt::Display for SimOsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimOsError::BadAlignment { addr, len } => {
                write!(f, "range {addr:#x}+{len:#x} is not page-aligned or empty")
            }
            SimOsError::UnmappedRange { addr, len } => {
                write!(f, "range {:#x}+{len:#x} is not fully mapped", addr.0)
            }
            SimOsError::ProtectionViolation { addr } => {
                write!(f, "access at {:#x} violates mapping protection", addr.0)
            }
            SimOsError::NoSuchProcess(pid) => write!(f, "no such process: {pid:?}"),
            SimOsError::NoSuchFile(id) => write!(f, "no such file: {id}"),
            SimOsError::OutOfAddressSpace { requested } => {
                write!(f, "cannot fit mapping of {requested:#x} bytes")
            }
            SimOsError::MappingOverlap { addr } => {
                write!(f, "fixed mapping at {:#x} overlaps an existing one", addr.0)
            }
        }
    }
}

impl std::error::Error for SimOsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fatality_classification() {
        assert!(!SimOsError::NoSuchProcess(Pid(3)).is_fatal());
        assert!(!SimOsError::OutOfAddressSpace { requested: 1 << 40 }.is_fatal());
        assert!(SimOsError::BadAlignment { addr: 7, len: 1 }.is_fatal());
        assert!(SimOsError::UnmappedRange {
            addr: VirtAddr(0x1000),
            len: 0x1000
        }
        .is_fatal());
        assert!(SimOsError::ProtectionViolation {
            addr: VirtAddr(0x1000)
        }
        .is_fatal());
        assert!(SimOsError::NoSuchFile(0).is_fatal());
        assert!(SimOsError::MappingOverlap {
            addr: VirtAddr(0x1000)
        }
        .is_fatal());
    }
}
