//! Memory metrics: USS, RSS, PSS and `smaps`-style reports.
//!
//! The paper measures frozen instances with **USS** (Unique Set Size:
//! `private_dirty + private_clean`), because shared libraries like
//! `libjvm.so` are shared by many instances of the same language and
//! should not be charged to any single one (§3.1). Figure 8 additionally
//! reports **RSS** and **PSS**. Definitions, per resident page of a
//! process:
//!
//! * anonymous pages and dirty (CoW) file pages are always *private*;
//! * clean file-backed pages are private iff exactly one process maps
//!   them, shared otherwise;
//! * `RSS` counts every resident page once,
//! * `USS` counts only private pages,
//! * `PSS` counts private pages once and shared pages as `1/n` where
//!   `n` is the number of mapping processes.

use crate::mem::{Mapping, MappingKind};
use crate::system::{Pid, System};

/// Per-mapping breakdown, mirroring an `smaps` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SmapsEntry {
    /// Mapping name (e.g. `"[heap:java]"`, `"libjvm.so"`).
    pub name: String,
    /// Mapping start address.
    pub start: u64,
    /// Mapping length in bytes.
    pub len: u64,
    /// Resident bytes.
    pub rss: u64,
    /// Proportional set size in bytes (fractional for shared pages).
    pub pss: f64,
    /// Resident private clean bytes (file pages mapped by one process).
    pub private_clean: u64,
    /// Resident private dirty bytes (anon + CoW file pages).
    pub private_dirty: u64,
    /// Resident shared clean bytes.
    pub shared_clean: u64,
    /// Bytes on the swap device.
    pub swap: u64,
    /// True if the mapping is file-backed.
    pub file_backed: bool,
}

impl SmapsEntry {
    /// USS contribution of this mapping.
    pub fn uss(&self) -> u64 {
        self.private_clean + self.private_dirty
    }

    /// True if the whole resident part is private and unmodified and
    /// the mapping is file-backed — the §4.6 unmap-candidate predicate.
    pub fn is_private_unmodified_file(&self) -> bool {
        self.file_backed && self.private_dirty == 0 && self.shared_clean == 0 && self.rss > 0
    }
}

fn classify(sys: &System, m: &Mapping) -> SmapsEntry {
    // Anonymous mappings never share pages, so their entry follows
    // directly from the maintained counters — no page walk needed.
    // (Heaps are anonymous and large; this path is hot.)
    if matches!(m.kind, MappingKind::Anonymous) {
        let rss = m.resident_bytes();
        // Dirty pages on the swap device keep their dirty flag; deduct
        // them to approximate the *resident* dirty count. The USS/PSS
        // totals are exact either way (anonymous pages are always
        // private); only the clean/dirty split is approximate.
        let dirty = m.dirty_bytes().saturating_sub(m.swapped_bytes()).min(rss);
        return SmapsEntry {
            name: m.name.clone(),
            start: m.start.0,
            len: m.len(),
            rss,
            pss: rss as f64,
            private_clean: rss - dirty,
            private_dirty: dirty,
            shared_clean: 0,
            swap: m.swapped_bytes(),
            file_backed: false,
        };
    }
    // File-backed mapping: residency, swap, and the dirty (CoW) subset
    // come from the bitmaps via popcounts. Only clean resident pages
    // need per-page treatment — their private/shared split depends on
    // the page-cache mapper count — and those are enumerated by set-bit
    // iteration rather than a walk over every page.
    let page = crate::mem::PAGE_SIZE;
    let rss = m.resident_bytes();
    let swap = m.swapped_bytes();
    let private_dirty = m.resident_dirty_pages() * page;
    let mut pss = private_dirty as f64;
    let mut private_clean = 0u64;
    let mut shared_clean = 0u64;
    if let MappingKind::PrivateFile(file) = m.kind {
        m.for_each_clean_resident_page(|idx| {
            let n = sys.files().mapper_count(file, idx).max(1);
            if n == 1 {
                private_clean += page;
                pss += page as f64;
            } else {
                shared_clean += page;
                pss += page as f64 / n as f64;
            }
        });
    }
    SmapsEntry {
        name: m.name.clone(),
        start: m.start.0,
        len: m.len(),
        rss,
        pss,
        private_clean,
        private_dirty,
        shared_clean,
        swap,
        file_backed: matches!(m.kind, MappingKind::PrivateFile(_)),
    }
}

/// Full `smaps` report for `pid` (empty if the process is gone).
pub fn smaps(sys: &System, pid: Pid) -> Vec<SmapsEntry> {
    match sys.space(pid) {
        Ok(space) => space.mappings().map(|m| classify(sys, m)).collect(),
        Err(_) => Vec::new(),
    }
}

/// Resident set size of `pid` in bytes.
pub fn rss(sys: &System, pid: Pid) -> u64 {
    smaps(sys, pid).iter().map(|e| e.rss).sum()
}

/// Unique set size of `pid` in bytes (`private_clean + private_dirty`).
pub fn uss(sys: &System, pid: Pid) -> u64 {
    smaps(sys, pid).iter().map(SmapsEntry::uss).sum()
}

/// Proportional set size of `pid` in bytes.
pub fn pss(sys: &System, pid: Pid) -> f64 {
    smaps(sys, pid).iter().map(|e| e.pss).sum()
}

/// Bytes of `pid` currently on the swap device.
pub fn swap_bytes(sys: &System, pid: Pid) -> u64 {
    smaps(sys, pid).iter().map(|e| e.swap).sum()
}

/// Machine-wide RSS: the sum over all live processes. Shared pages are
/// counted once *per mapper*, so this overstates physical memory.
pub fn total_rss(sys: &System) -> u64 {
    sys.pids().map(|pid| rss(sys, pid)).sum()
}

/// Machine-wide USS: the sum over all live processes. Shared pages are
/// not counted at all, so this understates physical memory.
pub fn total_uss(sys: &System) -> u64 {
    sys.pids().map(|pid| uss(sys, pid)).sum()
}

/// Machine-wide PSS: the sum over all live processes. Each shared page
/// contributes exactly 1.0 across its mappers, so this *is* the
/// process-attributable physical memory — the quantity conserved when
/// instances are killed (the chaos harness's conservation invariant).
pub fn total_pss(sys: &System) -> f64 {
    sys.pids().map(|pid| pss(sys, pid)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{MappingKind, Prot, PAGE_SIZE};

    #[test]
    fn anon_pages_count_in_all_metrics() {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let a = sys
            .mmap(pid, 4 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite)
            .unwrap();
        sys.touch(pid, a, 3 * PAGE_SIZE, true).unwrap();
        assert_eq!(rss(&sys, pid), 3 * PAGE_SIZE);
        assert_eq!(uss(&sys, pid), 3 * PAGE_SIZE);
        assert_eq!(pss(&sys, pid), (3 * PAGE_SIZE) as f64);
    }

    #[test]
    fn single_mapper_library_is_private_clean() {
        let mut sys = System::new();
        let lib = sys.register_file("libjvm.so", 8 * PAGE_SIZE);
        let pid = sys.spawn_process();
        sys.map_library(pid, lib).unwrap();
        let entries = smaps(&sys, pid);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].private_clean, 8 * PAGE_SIZE);
        assert_eq!(entries[0].shared_clean, 0);
        assert!(entries[0].is_private_unmodified_file());
        assert_eq!(uss(&sys, pid), 8 * PAGE_SIZE);
    }

    #[test]
    fn shared_library_leaves_uss_and_splits_pss() {
        let mut sys = System::new();
        let lib = sys.register_file("libjvm.so", 8 * PAGE_SIZE);
        let p1 = sys.spawn_process();
        let p2 = sys.spawn_process();
        sys.map_library(p1, lib).unwrap();
        sys.map_library(p2, lib).unwrap();
        // USS excludes the library entirely once shared.
        assert_eq!(uss(&sys, p1), 0);
        // RSS still counts it in full.
        assert_eq!(rss(&sys, p1), 8 * PAGE_SIZE);
        // PSS splits it evenly.
        assert_eq!(pss(&sys, p1), (4 * PAGE_SIZE) as f64);
    }

    #[test]
    fn pss_approaches_uss_with_more_sharers() {
        let mut sys = System::new();
        let lib = sys.register_file("node", 64 * PAGE_SIZE);
        let mut pids = Vec::new();
        for _ in 0..8 {
            let pid = sys.spawn_process();
            sys.map_library(pid, lib).unwrap();
            pids.push(pid);
        }
        let p = pids[0];
        let gap = pss(&sys, p) - uss(&sys, p) as f64;
        assert!(gap <= (8 * PAGE_SIZE) as f64 + 1.0, "gap was {gap}");
    }

    #[test]
    fn metric_ordering_invariants_hold() {
        let mut sys = System::new();
        let lib = sys.register_file("libc.so", 16 * PAGE_SIZE);
        let p1 = sys.spawn_process();
        let p2 = sys.spawn_process();
        sys.map_library(p1, lib).unwrap();
        sys.map_library(p2, lib).unwrap();
        let a = sys
            .mmap(p1, 16 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite)
            .unwrap();
        sys.touch(p1, a, 10 * PAGE_SIZE, true).unwrap();
        let (u, p, r) = (uss(&sys, p1) as f64, pss(&sys, p1), rss(&sys, p1) as f64);
        assert!(u <= p + 1e-9);
        assert!(p <= r + 1e-9);
    }

    #[test]
    fn machine_totals_sum_over_processes() {
        let mut sys = System::new();
        let lib = sys.register_file("libjvm.so", 8 * PAGE_SIZE);
        let p1 = sys.spawn_process();
        let p2 = sys.spawn_process();
        sys.map_library(p1, lib).unwrap();
        sys.map_library(p2, lib).unwrap();
        let a = sys
            .mmap(p1, 4 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite)
            .unwrap();
        sys.touch(p1, a, 4 * PAGE_SIZE, true).unwrap();
        // The shared library is double-counted in RSS, absent from USS,
        // and counted exactly once in PSS.
        assert_eq!(total_rss(&sys), 16 * PAGE_SIZE + 4 * PAGE_SIZE);
        assert_eq!(total_uss(&sys), 4 * PAGE_SIZE);
        assert!((total_pss(&sys) - (12 * PAGE_SIZE) as f64).abs() < 1e-6);
    }

    #[test]
    fn kill_conserves_machine_pss() {
        // Killing one mapper of a shared library hands its PSS share to
        // the survivor: machine PSS drops by exactly the victim's
        // private bytes. The crash/OOM-kill paths lean on this.
        let mut sys = System::new();
        let lib = sys.register_file("libjvm.so", 8 * PAGE_SIZE);
        let p1 = sys.spawn_process();
        let p2 = sys.spawn_process();
        sys.map_library(p1, lib).unwrap();
        sys.map_library(p2, lib).unwrap();
        let a = sys
            .mmap(p2, 6 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite)
            .unwrap();
        sys.touch(p2, a, 6 * PAGE_SIZE, true).unwrap();
        let before = total_pss(&sys);
        let victim_private = uss(&sys, p2);
        assert_eq!(victim_private, 6 * PAGE_SIZE);
        sys.kill_process(p2).unwrap();
        let after = total_pss(&sys);
        assert!(
            (before - after - victim_private as f64).abs() < 1e-6,
            "PSS not conserved: {before} -> {after}, victim USS {victim_private}"
        );
        // The survivor now owns the whole library.
        assert_eq!(uss(&sys, p1), 8 * PAGE_SIZE);
    }

    #[test]
    fn swap_shows_in_smaps_not_rss() {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let a = sys
            .mmap(pid, 4 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite)
            .unwrap();
        sys.touch(pid, a, 4 * PAGE_SIZE, true).unwrap();
        sys.swap_out(pid, a, 4 * PAGE_SIZE).unwrap();
        assert_eq!(rss(&sys, pid), 0);
        assert_eq!(swap_bytes(&sys, pid), 4 * PAGE_SIZE);
    }
}
