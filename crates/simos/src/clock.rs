//! Virtual time.
//!
//! Everything in the reproduction — GC pauses, page-fault refills, cold
//! boots, trace inter-arrival gaps — happens in *simulated* time so that
//! every experiment is deterministic and independent of the host. Time
//! is a nanosecond counter wrapped in two newtypes: an instant
//! ([`SimTime`]) and a span ([`SimDuration`]).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, as nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated time is
    /// monotonic, so that indicates a logic error in the caller.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {earlier:?} > {self:?}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Returns the duration elapsed since `earlier`, or zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Nanoseconds since the simulation epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation epoch, as a float (for reports).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds in this duration, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a non-negative float factor (for scale factors).
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(f.is_finite() && f >= 0.0, "invalid factor: {f}");
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A monotonic virtual clock.
///
/// The clock is advanced explicitly by whoever drives the simulation
/// (the FaaS discrete-event engine in the full system, or the test
/// itself in unit tests).
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// Creates a clock at the simulation epoch.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }

    /// Advances the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past; the clock is monotonic.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "clock cannot go backwards");
        self.now = t;
    }
}

/// Checkpoint codec impls, kept here so exhaustive destructuring sees
/// every private field.
mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for SimTime {
        fn snap(&self, w: &mut Writer) {
            let Self(ns) = self;
            w.u64(*ns);
        }

        fn restore(r: &mut Reader<'_>) -> Result<SimTime, SnapError> {
            Ok(SimTime(r.u64()?))
        }
    }

    impl Snapshot for SimDuration {
        fn snap(&self, w: &mut Writer) {
            let Self(ns) = self;
            w.u64(*ns);
        }

        fn restore(r: &mut Reader<'_>) -> Result<SimDuration, SnapError> {
            Ok(SimDuration(r.u64()?))
        }
    }

    impl Snapshot for Clock {
        fn snap(&self, w: &mut Writer) {
            let Self { now } = self;
            now.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<Clock, SnapError> {
            Ok(Clock {
                now: SimTime::restore(r)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(250);
        assert_eq!(t1.since(t0), SimDuration::from_millis(250));
        assert_eq!(t1.saturating_since(t1 + SimDuration(1)), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_on_reversed_order() {
        let later = SimTime(10);
        let _ = SimTime(5).since(later);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_secs(2));
        assert_eq!(c.now().as_secs_f64(), 2.0);
        c.advance_to(SimTime(3_000_000_000));
        assert_eq!(c.now().as_secs_f64(), 3.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn mul_and_div_scale_durations() {
        let d = SimDuration::from_millis(10);
        assert_eq!((d * 3).as_millis_f64(), 30.0);
        assert_eq!((d / 2).as_millis_f64(), 5.0);
        assert_eq!(d.mul_f64(0.1).as_millis_f64(), 1.0);
    }
}
