//! Virtual-memory model: mappings, pages, and the calls that move them.
//!
//! The model is deliberately close to Linux semantics because the paper
//! leans on them directly: HotSpot "shrinks" its heap by protecting
//! pages (`PROT_NONE`, which in HotSpot's implementation frees the
//! backing physical pages), V8 unmaps whole 256 KiB chunks, Desiccant
//! releases free in-heap pages with `mmap`, and the shared-library
//! optimization unmaps *private, unmodified, file-backed* ranges found
//! in `smaps` (§4.6).
//!
//! Each page of a mapping carries four flags:
//!
//! * `RESIDENT` — backed by a (simulated) physical page,
//! * `DIRTY` — modified since mapped (for file mappings this models the
//!   copy-on-write private copy),
//! * `SWAPPED` — contents moved to the swap device,
//! * `NOACCESS` — protected out (`PROT_NONE`), i.e. uncommitted.

use std::collections::BTreeMap;

use crate::error::{SimOsError, SimOsResult};
use crate::system::{FileId, FileRegistry};

/// The page size of the simulated machine (4 KiB, like the paper's
/// x86-64 testbed).
pub const PAGE_SIZE: u64 = 4096;

/// Rounds `len` up to a whole number of pages.
pub fn page_align_up(len: u64) -> u64 {
    len.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

/// A virtual address in a simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Byte offset addition.
    pub fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }

    /// True if this address is page-aligned.
    pub fn is_page_aligned(self) -> bool {
        self.0 % PAGE_SIZE == 0
    }
}

/// Memory protection for a mapping or page range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prot {
    /// No access: the range is uncommitted; touching it is an error.
    None,
    /// Read-only access.
    Read,
    /// Read-write access.
    ReadWrite,
}

impl Prot {
    /// Alias matching the common `PROT_READ | PROT_WRITE` spelling.
    pub const READ_WRITE: Prot = Prot::ReadWrite;
}

/// What backs a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingKind {
    /// Anonymous private memory (heaps, malloc arenas, stacks).
    Anonymous,
    /// A `MAP_PRIVATE` file mapping starting at offset zero of `file`
    /// (shared libraries and runtime images). Clean pages are shared
    /// through the page cache; written pages become private copies.
    PrivateFile(FileId),
}

/// Per-page state flags.
pub mod page_flags {
    /// Page is backed by a physical page.
    pub const RESIDENT: u8 = 1;
    /// Page was written since it was mapped (anon) or is a private CoW
    /// copy (file-backed).
    pub const DIRTY: u8 = 2;
    /// Page contents live on the swap device.
    pub const SWAPPED: u8 = 4;
    /// Page is protected `PROT_NONE` (uncommitted).
    pub const NOACCESS: u8 = 8;
}

/// The outcome of touching a range: how many faults of each kind the
/// access incurred. The cost model converts this into simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TouchOutcome {
    /// Pages that had to be zero-filled (first touch, or touch after a
    /// release).
    pub zero_fill_faults: u64,
    /// File-backed pages faulted in from the page cache or disk.
    pub file_faults: u64,
    /// Pages brought back from the swap device.
    pub swap_ins: u64,
}

impl TouchOutcome {
    /// Total faults of any kind.
    pub fn total_faults(&self) -> u64 {
        self.zero_fill_faults + self.file_faults + self.swap_ins
    }

    /// Accumulates another outcome into this one.
    pub fn merge(&mut self, other: TouchOutcome) {
        self.zero_fill_faults += other.zero_fill_faults;
        self.file_faults += other.file_faults;
        self.swap_ins += other.swap_ins;
    }
}

/// A contiguous virtual mapping.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// First address of the mapping (page-aligned).
    pub start: VirtAddr,
    /// What backs the mapping.
    pub kind: MappingKind,
    /// Human-readable name, as it would appear in `smaps` (e.g.
    /// `"[heap:java]"`, `"libjvm.so"`).
    pub name: String,
    /// Per-page flags; length is the page count of the mapping.
    pages: Vec<u8>,
    /// Count of pages with `RESIDENT` set (kept in sync incrementally).
    resident_pages: u64,
    /// Count of pages with `DIRTY` set.
    dirty_pages: u64,
    /// Count of pages with `SWAPPED` set.
    swapped_pages: u64,
}

impl Mapping {
    fn new(start: VirtAddr, npages: usize, kind: MappingKind, prot: Prot, name: &str) -> Mapping {
        let init = if matches!(prot, Prot::None) {
            page_flags::NOACCESS
        } else {
            0
        };
        Mapping {
            start,
            kind,
            name: name.to_string(),
            pages: vec![init; npages],
            resident_pages: 0,
            dirty_pages: 0,
            swapped_pages: 0,
        }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// True if the mapping has zero pages (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// One-past-the-end address.
    pub fn end(&self) -> VirtAddr {
        VirtAddr(self.start.0 + self.len())
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_pages * PAGE_SIZE
    }

    /// Bytes currently dirty.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty_pages * PAGE_SIZE
    }

    /// Bytes currently on swap.
    pub fn swapped_bytes(&self) -> u64 {
        self.swapped_pages * PAGE_SIZE
    }

    /// Raw flags for page `idx`.
    pub fn page(&self, idx: usize) -> u8 {
        self.pages[idx]
    }

    /// Number of pages in the mapping.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Converts an address inside the mapping to a page index.
    fn page_index(&self, addr: VirtAddr) -> usize {
        debug_assert!(addr >= self.start && addr < self.end());
        ((addr.0 - self.start.0) / PAGE_SIZE) as usize
    }

    fn set_flag(&mut self, idx: usize, flag: u8) {
        let had = self.pages[idx] & flag != 0;
        self.pages[idx] |= flag;
        if !had {
            match flag {
                page_flags::RESIDENT => self.resident_pages += 1,
                page_flags::DIRTY => self.dirty_pages += 1,
                page_flags::SWAPPED => self.swapped_pages += 1,
                _ => {}
            }
        }
    }

    fn clear_flag(&mut self, idx: usize, flag: u8) {
        let had = self.pages[idx] & flag != 0;
        self.pages[idx] &= !flag;
        if had {
            match flag {
                page_flags::RESIDENT => self.resident_pages -= 1,
                page_flags::DIRTY => self.dirty_pages -= 1,
                page_flags::SWAPPED => self.swapped_pages -= 1,
                _ => {}
            }
        }
    }

    /// Resident bytes within `[addr, addr + len)` (the `pmap` view that
    /// Desiccant uses to size a HotSpot heap, §4.5.2).
    pub fn resident_bytes_in(&self, addr: VirtAddr, len: u64) -> u64 {
        // Whole-mapping probes are frequent (heap-residency sampling);
        // serve them from the maintained counter.
        if addr == self.start && len == self.len() {
            return self.resident_bytes();
        }
        let first = self.page_index(addr);
        let last = first + (len / PAGE_SIZE) as usize;
        self.pages[first..last]
            .iter()
            .filter(|p| **p & page_flags::RESIDENT != 0)
            .count() as u64
            * PAGE_SIZE
    }
}

/// A per-process virtual address space.
///
/// Mappings are kept in an ordered map from start address; lookups walk
/// to the candidate mapping in `O(log n)`.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    mappings: BTreeMap<u64, Mapping>,
    /// Next address handed out by non-fixed `mmap`; grows upward from a
    /// conventional base to keep addresses stable and readable.
    next_addr: u64,
    /// Upper bound of the usable address range.
    limit: u64,
}

/// Base of the `mmap` allocation area.
const MMAP_BASE: u64 = 0x0000_7000_0000_0000 >> 16 << 16;
/// End of the usable address range (48-bit canonical user space).
const ADDR_LIMIT: u64 = 0x0000_7fff_ffff_f000;

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace {
            mappings: BTreeMap::new(),
            next_addr: MMAP_BASE,
            limit: ADDR_LIMIT,
        }
    }

    /// Iterates over all mappings in address order.
    pub fn mappings(&self) -> impl Iterator<Item = &Mapping> {
        self.mappings.values()
    }

    /// Looks up the mapping containing `addr`.
    pub fn mapping_at(&self, addr: VirtAddr) -> Option<&Mapping> {
        self.mappings
            .range(..=addr.0)
            .next_back()
            .map(|(_, m)| m)
            .filter(|m| addr < m.end())
    }

    fn mapping_at_mut(&mut self, addr: VirtAddr) -> Option<&mut Mapping> {
        self.mappings
            .range_mut(..=addr.0)
            .next_back()
            .map(|(_, m)| m)
            .filter(|m| addr < m.end())
    }

    fn validate_range(addr: VirtAddr, len: u64) -> SimOsResult<()> {
        if len == 0 || !addr.is_page_aligned() || len % PAGE_SIZE != 0 {
            return Err(SimOsError::BadAlignment { addr: addr.0, len });
        }
        Ok(())
    }

    /// Maps `len` bytes (rounded up to pages) at a kernel-chosen
    /// address.
    pub fn mmap(
        &mut self,
        len: u64,
        kind: MappingKind,
        prot: Prot,
        name: &str,
    ) -> SimOsResult<VirtAddr> {
        let len = page_align_up(len.max(1));
        if self.next_addr + len > self.limit {
            return Err(SimOsError::OutOfAddressSpace { requested: len });
        }
        let addr = VirtAddr(self.next_addr);
        // Leave a guard gap between mappings so off-by-one range bugs
        // surface as `UnmappedRange` instead of silently touching a
        // neighbour.
        self.next_addr += len + PAGE_SIZE;
        self.insert_mapping(addr, len, kind, prot, name)?;
        Ok(addr)
    }

    /// Maps `len` bytes at the fixed address `addr`.
    pub fn mmap_at(
        &mut self,
        addr: VirtAddr,
        len: u64,
        kind: MappingKind,
        prot: Prot,
        name: &str,
    ) -> SimOsResult<VirtAddr> {
        Self::validate_range(addr, len)?;
        self.insert_mapping(addr, len, kind, prot, name)?;
        Ok(addr)
    }

    fn insert_mapping(
        &mut self,
        addr: VirtAddr,
        len: u64,
        kind: MappingKind,
        prot: Prot,
        name: &str,
    ) -> SimOsResult<()> {
        let end = addr.0 + len;
        // Check the previous mapping does not run into us and the next
        // does not start inside us.
        if let Some(m) = self.mapping_at(addr) {
            let _ = m;
            return Err(SimOsError::MappingOverlap { addr });
        }
        if self.mappings.range(addr.0..end).next().is_some() {
            return Err(SimOsError::MappingOverlap { addr });
        }
        let npages = (len / PAGE_SIZE) as usize;
        self.mappings
            .insert(addr.0, Mapping::new(addr, npages, kind, prot, name));
        Ok(())
    }

    /// Unmaps the whole mapping starting exactly at `addr`.
    ///
    /// Partial unmapping (splitting) is not supported; the runtimes in
    /// this reproduction always unmap whole mappings and release page
    /// ranges with [`AddressSpace::release`] instead.
    pub fn munmap(&mut self, files: &mut FileRegistry, addr: VirtAddr) -> SimOsResult<Mapping> {
        let m = self
            .mappings
            .remove(&addr.0)
            .ok_or(SimOsError::UnmappedRange { addr, len: 0 })?;
        // Drop page-cache references held by this mapping.
        if let MappingKind::PrivateFile(file) = m.kind {
            for idx in 0..m.page_count() {
                let flags = m.page(idx);
                if flags & page_flags::RESIDENT != 0 && flags & page_flags::DIRTY == 0 {
                    files.dec_mapper(file, idx);
                }
            }
        }
        Ok(m)
    }

    /// Changes the protection of `[addr, addr + len)` (within a single
    /// mapping).
    ///
    /// Setting [`Prot::None`] models HotSpot's uncommit: the range
    /// becomes inaccessible *and* its physical pages are freed, exactly
    /// like HotSpot's `os::uncommit_memory`. Re-protecting the range
    /// readable/writable recommits it; the next touch zero-fills.
    pub fn mprotect(
        &mut self,
        files: &mut FileRegistry,
        addr: VirtAddr,
        len: u64,
        prot: Prot,
    ) -> SimOsResult<u64> {
        Self::validate_range(addr, len)?;
        let m = self
            .mapping_at_mut(addr)
            .ok_or(SimOsError::UnmappedRange { addr, len })?;
        if addr.0 + len > m.end().0 {
            return Err(SimOsError::UnmappedRange { addr, len });
        }
        let kind = m.kind;
        let first = m.page_index(addr);
        let last = first + (len / PAGE_SIZE) as usize;
        let mut freed = 0;
        for idx in first..last {
            match prot {
                Prot::None => {
                    if m.page(idx) & page_flags::RESIDENT != 0 {
                        freed += PAGE_SIZE;
                        Self::evict_page(files, m, kind, idx);
                    }
                    // Contents are discarded: a swapped-out private copy
                    // is dropped too, so the page is no longer dirty.
                    m.clear_flag(idx, page_flags::SWAPPED);
                    m.clear_flag(idx, page_flags::DIRTY);
                    m.set_flag(idx, page_flags::NOACCESS);
                }
                Prot::Read | Prot::ReadWrite => {
                    m.clear_flag(idx, page_flags::NOACCESS);
                }
            }
        }
        Ok(freed)
    }

    /// Drops a resident page, maintaining page-cache refcounts.
    fn evict_page(files: &mut FileRegistry, m: &mut Mapping, kind: MappingKind, idx: usize) {
        if let MappingKind::PrivateFile(file) = kind {
            if m.page(idx) & page_flags::DIRTY == 0 {
                files.dec_mapper(file, idx);
            }
        }
        m.clear_flag(idx, page_flags::RESIDENT);
        m.clear_flag(idx, page_flags::DIRTY);
    }

    /// Touches `[addr, addr + len)`, faulting pages in as needed.
    ///
    /// Returns how many faults of each kind occurred so the caller can
    /// charge simulated time.
    pub fn touch(
        &mut self,
        files: &mut FileRegistry,
        addr: VirtAddr,
        len: u64,
        write: bool,
    ) -> SimOsResult<TouchOutcome> {
        Self::validate_range(addr, len)?;
        let m = self
            .mapping_at_mut(addr)
            .ok_or(SimOsError::UnmappedRange { addr, len })?;
        if addr.0 + len > m.end().0 {
            return Err(SimOsError::UnmappedRange { addr, len });
        }
        let kind = m.kind;
        let first = m.page_index(addr);
        let last = first + (len / PAGE_SIZE) as usize;
        let mut out = TouchOutcome::default();
        for idx in first..last {
            let flags = m.page(idx);
            if flags & page_flags::NOACCESS != 0 {
                return Err(SimOsError::ProtectionViolation {
                    addr: VirtAddr(m.start.0 + idx as u64 * PAGE_SIZE),
                });
            }
            if flags & page_flags::RESIDENT == 0 {
                if flags & page_flags::SWAPPED != 0 {
                    out.swap_ins += 1;
                    m.clear_flag(idx, page_flags::SWAPPED);
                } else {
                    match kind {
                        MappingKind::Anonymous => out.zero_fill_faults += 1,
                        MappingKind::PrivateFile(file) => {
                            out.file_faults += 1;
                            if !write {
                                files.inc_mapper(file, idx);
                            }
                        }
                    }
                }
                m.set_flag(idx, page_flags::RESIDENT);
            }
            if write && m.page(idx) & page_flags::DIRTY == 0 {
                // A first write to a clean file page breaks CoW: the
                // page leaves the page cache and becomes private.
                if let MappingKind::PrivateFile(file) = kind {
                    if flags & page_flags::RESIDENT != 0 {
                        files.dec_mapper(file, idx);
                    }
                }
                m.set_flag(idx, page_flags::DIRTY);
            }
        }
        Ok(out)
    }

    /// Releases the physical pages of `[addr, addr + len)` back to the
    /// OS (`madvise(MADV_DONTNEED)` semantics): the virtual range stays
    /// mapped, contents are discarded, and the next touch zero-fills.
    ///
    /// Returns the number of bytes that were actually resident.
    pub fn release(
        &mut self,
        files: &mut FileRegistry,
        addr: VirtAddr,
        len: u64,
    ) -> SimOsResult<u64> {
        Self::validate_range(addr, len)?;
        let m = self
            .mapping_at_mut(addr)
            .ok_or(SimOsError::UnmappedRange { addr, len })?;
        if addr.0 + len > m.end().0 {
            return Err(SimOsError::UnmappedRange { addr, len });
        }
        let kind = m.kind;
        let first = m.page_index(addr);
        let last = first + (len / PAGE_SIZE) as usize;
        let mut freed = 0;
        for idx in first..last {
            if m.page(idx) & page_flags::RESIDENT != 0 {
                freed += PAGE_SIZE;
                Self::evict_page(files, m, kind, idx);
            }
            // Discard any swapped-out private copy as well.
            m.clear_flag(idx, page_flags::SWAPPED);
            m.clear_flag(idx, page_flags::DIRTY);
        }
        Ok(freed)
    }

    /// Moves the resident pages of `[addr, addr + len)` to swap.
    ///
    /// Returns the number of bytes swapped out. Clean file pages are
    /// simply dropped (they can be re-read), dirty/anonymous pages go to
    /// the swap device. This models the paper's §5.6 swapping baseline,
    /// which has no runtime guidance about which pages matter.
    pub fn swap_out(
        &mut self,
        files: &mut FileRegistry,
        addr: VirtAddr,
        len: u64,
    ) -> SimOsResult<u64> {
        Self::validate_range(addr, len)?;
        let m = self
            .mapping_at_mut(addr)
            .ok_or(SimOsError::UnmappedRange { addr, len })?;
        if addr.0 + len > m.end().0 {
            return Err(SimOsError::UnmappedRange { addr, len });
        }
        let kind = m.kind;
        let first = m.page_index(addr);
        let last = first + (len / PAGE_SIZE) as usize;
        let mut swapped = 0;
        for idx in first..last {
            let flags = m.page(idx);
            if flags & page_flags::RESIDENT == 0 {
                continue;
            }
            swapped += PAGE_SIZE;
            let dirty = flags & page_flags::DIRTY != 0;
            match kind {
                MappingKind::Anonymous => {
                    m.clear_flag(idx, page_flags::RESIDENT);
                    m.set_flag(idx, page_flags::SWAPPED);
                }
                MappingKind::PrivateFile(file) => {
                    if dirty {
                        m.clear_flag(idx, page_flags::RESIDENT);
                        m.set_flag(idx, page_flags::SWAPPED);
                    } else {
                        files.dec_mapper(file, idx);
                        m.clear_flag(idx, page_flags::RESIDENT);
                    }
                }
            }
        }
        Ok(swapped)
    }

    /// Resident bytes across the whole address space.
    pub fn resident_bytes(&self) -> u64 {
        self.mappings.values().map(Mapping::resident_bytes).sum()
    }

    /// Resident bytes within `[addr, addr + len)`, the `pmap` view.
    pub fn resident_bytes_in(&self, addr: VirtAddr, len: u64) -> SimOsResult<u64> {
        Self::validate_range(addr, len)?;
        let m = self
            .mapping_at(addr)
            .ok_or(SimOsError::UnmappedRange { addr, len })?;
        if addr.0 + len > m.end().0 {
            return Err(SimOsError::UnmappedRange { addr, len });
        }
        Ok(m.resident_bytes_in(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_and_files() -> (AddressSpace, FileRegistry) {
        (AddressSpace::new(), FileRegistry::new())
    }

    #[test]
    fn mmap_then_touch_makes_pages_resident() {
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(8 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "t")
            .unwrap();
        assert_eq!(s.resident_bytes(), 0);
        let out = s.touch(&mut f, a, 3 * PAGE_SIZE, true).unwrap();
        assert_eq!(out.zero_fill_faults, 3);
        assert_eq!(s.resident_bytes(), 3 * PAGE_SIZE);
        // Touching again faults nothing.
        let out = s.touch(&mut f, a, 3 * PAGE_SIZE, true).unwrap();
        assert_eq!(out.total_faults(), 0);
    }

    #[test]
    fn release_discards_and_refaults() {
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(4 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "t")
            .unwrap();
        s.touch(&mut f, a, 4 * PAGE_SIZE, true).unwrap();
        let freed = s.release(&mut f, a, 2 * PAGE_SIZE).unwrap();
        assert_eq!(freed, 2 * PAGE_SIZE);
        assert_eq!(s.resident_bytes(), 2 * PAGE_SIZE);
        let out = s.touch(&mut f, a, 4 * PAGE_SIZE, false).unwrap();
        assert_eq!(out.zero_fill_faults, 2);
    }

    #[test]
    fn prot_none_uncommits_and_blocks_access() {
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(4 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "t")
            .unwrap();
        s.touch(&mut f, a, 4 * PAGE_SIZE, true).unwrap();
        let freed = s.mprotect(&mut f, a, 4 * PAGE_SIZE, Prot::None).unwrap();
        assert_eq!(freed, 4 * PAGE_SIZE);
        assert_eq!(s.resident_bytes(), 0);
        let err = s.touch(&mut f, a, PAGE_SIZE, false).unwrap_err();
        assert!(matches!(err, SimOsError::ProtectionViolation { .. }));
        // Recommit and touch again.
        s.mprotect(&mut f, a, 4 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        let out = s.touch(&mut f, a, PAGE_SIZE, true).unwrap();
        assert_eq!(out.zero_fill_faults, 1);
    }

    #[test]
    fn swap_out_and_back_in() {
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(4 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "t")
            .unwrap();
        s.touch(&mut f, a, 4 * PAGE_SIZE, true).unwrap();
        let swapped = s.swap_out(&mut f, a, 4 * PAGE_SIZE).unwrap();
        assert_eq!(swapped, 4 * PAGE_SIZE);
        assert_eq!(s.resident_bytes(), 0);
        let out = s.touch(&mut f, a, 4 * PAGE_SIZE, false).unwrap();
        assert_eq!(out.swap_ins, 4);
        assert_eq!(s.resident_bytes(), 4 * PAGE_SIZE);
    }

    #[test]
    fn file_pages_share_through_page_cache() {
        let mut f = FileRegistry::new();
        let lib = f.register("libjvm.so", 4 * PAGE_SIZE);
        let mut s1 = AddressSpace::new();
        let mut s2 = AddressSpace::new();
        let a1 = s1
            .mmap(4 * PAGE_SIZE, MappingKind::PrivateFile(lib), Prot::Read, "libjvm.so")
            .unwrap();
        let a2 = s2
            .mmap(4 * PAGE_SIZE, MappingKind::PrivateFile(lib), Prot::Read, "libjvm.so")
            .unwrap();
        s1.touch(&mut f, a1, 4 * PAGE_SIZE, false).unwrap();
        assert_eq!(f.mapper_count(lib, 0), 1);
        s2.touch(&mut f, a2, 4 * PAGE_SIZE, false).unwrap();
        assert_eq!(f.mapper_count(lib, 0), 2);
        s1.release(&mut f, a1, 4 * PAGE_SIZE).unwrap();
        assert_eq!(f.mapper_count(lib, 0), 1);
    }

    #[test]
    fn cow_write_privatizes_file_page() {
        let mut f = FileRegistry::new();
        let lib = f.register("libjvm.so", 2 * PAGE_SIZE);
        let mut s = AddressSpace::new();
        let a = s
            .mmap(
                2 * PAGE_SIZE,
                MappingKind::PrivateFile(lib),
                Prot::ReadWrite,
                "libjvm.so",
            )
            .unwrap();
        s.touch(&mut f, a, 2 * PAGE_SIZE, false).unwrap();
        assert_eq!(f.mapper_count(lib, 0), 1);
        // Write to the first page only: it leaves the page cache.
        s.touch(&mut f, a, PAGE_SIZE, true).unwrap();
        assert_eq!(f.mapper_count(lib, 0), 0);
        assert_eq!(f.mapper_count(lib, 1), 1);
        let m = s.mapping_at(a).unwrap();
        assert_eq!(m.dirty_bytes(), PAGE_SIZE);
    }

    #[test]
    fn overlapping_fixed_mapping_is_rejected() {
        let (mut s, _f) = space_and_files();
        let a = s
            .mmap(4 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "x")
            .unwrap();
        let err = s
            .mmap_at(
                a.offset(PAGE_SIZE),
                PAGE_SIZE,
                MappingKind::Anonymous,
                Prot::ReadWrite,
                "y",
            )
            .unwrap_err();
        assert!(matches!(err, SimOsError::MappingOverlap { .. }));
    }

    #[test]
    fn unaligned_ranges_are_rejected() {
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(4 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "x")
            .unwrap();
        assert!(s.touch(&mut f, VirtAddr(a.0 + 1), PAGE_SIZE, false).is_err());
        assert!(s.touch(&mut f, a, 100, false).is_err());
    }

    #[test]
    fn touch_past_mapping_end_is_rejected() {
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(2 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "x")
            .unwrap();
        let err = s.touch(&mut f, a, 3 * PAGE_SIZE, false).unwrap_err();
        assert!(matches!(err, SimOsError::UnmappedRange { .. }));
    }

    #[test]
    fn pmap_counts_only_requested_range() {
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(8 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "x")
            .unwrap();
        s.touch(&mut f, a, 2 * PAGE_SIZE, true).unwrap();
        s.touch(&mut f, a.offset(6 * PAGE_SIZE), PAGE_SIZE, true).unwrap();
        assert_eq!(
            s.resident_bytes_in(a, 4 * PAGE_SIZE).unwrap(),
            2 * PAGE_SIZE
        );
        assert_eq!(
            s.resident_bytes_in(a, 8 * PAGE_SIZE).unwrap(),
            3 * PAGE_SIZE
        );
    }

    #[test]
    fn munmap_removes_mapping_and_cache_refs() {
        let mut f = FileRegistry::new();
        let lib = f.register("node", 2 * PAGE_SIZE);
        let mut s = AddressSpace::new();
        let a = s
            .mmap(2 * PAGE_SIZE, MappingKind::PrivateFile(lib), Prot::Read, "node")
            .unwrap();
        s.touch(&mut f, a, 2 * PAGE_SIZE, false).unwrap();
        assert_eq!(f.mapper_count(lib, 1), 1);
        s.munmap(&mut f, a).unwrap();
        assert_eq!(f.mapper_count(lib, 1), 0);
        assert!(s.mapping_at(a).is_none());
    }
}
