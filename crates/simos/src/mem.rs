//! Virtual-memory model: mappings, pages, and the calls that move them.
//!
//! The model is deliberately close to Linux semantics because the paper
//! leans on them directly: HotSpot "shrinks" its heap by protecting
//! pages (`PROT_NONE`, which in HotSpot's implementation frees the
//! backing physical pages), V8 unmaps whole 256 KiB chunks, Desiccant
//! releases free in-heap pages with `mmap`, and the shared-library
//! optimization unmaps *private, unmodified, file-backed* ranges found
//! in `smaps` (§4.6).
//!
//! Each page of a mapping carries four flags:
//!
//! * `RESIDENT` — backed by a (simulated) physical page,
//! * `DIRTY` — modified since mapped (for file mappings this models the
//!   copy-on-write private copy),
//! * `SWAPPED` — contents moved to the swap device,
//! * `NOACCESS` — protected out (`PROT_NONE`), i.e. uncommitted.
//!
//! Flags are stored as four packed bitmaps ([`pagebits::PageBits`], one
//! bit per page per flag) so range operations — touch, release,
//! `PROT_NONE` uncommit, swap scans, `pmap`/`smaps` aggregation — work
//! on 64 pages per instruction with `count_ones()` popcounts instead of
//! a byte-per-page walk. Per-page iteration survives only where a
//! side effect is inherently per-page (page-cache refcounts of
//! file-backed pages). The old byte-per-page representation lives on in
//! [`reference`] as the oracle for property tests and the baseline side
//! of the Criterion comparisons.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::{SimOsError, SimOsResult};
use crate::system::{FileId, FileRegistry};

/// The page size of the simulated machine (4 KiB, like the paper's
/// x86-64 testbed).
pub const PAGE_SIZE: u64 = 4096;

/// Rounds `len` up to a whole number of pages.
pub fn page_align_up(len: u64) -> u64 {
    len.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

pub mod pagebits {
    //! One-bit-per-page sets packed into `u64` words.
    //!
    //! A [`PageBits`] stores one flag for every page of a mapping. Range
    //! operations visit whole words through [`masked_words`], so setting,
    //! clearing, or counting a flag over an `N`-page range costs
    //! `O(N / 64)` word operations, each resolving a 64-page batch with
    //! one mask and one `count_ones()`.

    /// A packed bitmap with one bit per page.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct PageBits {
        words: Vec<u64>,
        npages: usize,
    }

    /// Iterator of `(word_index, mask)` pairs covering a page range.
    #[derive(Debug, Clone)]
    pub struct MaskedWords {
        next: usize,
        last: usize,
    }

    /// Yields `(word_index, mask)` for every word overlapping
    /// `[first, last)`; the mask selects exactly the in-range bits.
    pub fn masked_words(first: usize, last: usize) -> MaskedWords {
        MaskedWords { next: first, last }
    }

    impl Iterator for MaskedWords {
        type Item = (usize, u64);

        fn next(&mut self) -> Option<(usize, u64)> {
            if self.next >= self.last {
                return None;
            }
            let w = self.next / 64;
            let lo = self.next % 64;
            let hi = (self.last - w * 64).min(64);
            let mask = if hi - lo == 64 {
                u64::MAX
            } else {
                ((1u64 << (hi - lo)) - 1) << lo
            };
            self.next = (w + 1) * 64;
            Some((w, mask))
        }
    }

    /// Calls `f` with the page index of every set bit in `bits`, where
    /// `bits` came from word `w` of a bitmap.
    pub fn for_each_bit(w: usize, mut bits: u64, mut f: impl FnMut(usize)) {
        while bits != 0 {
            f(w * 64 + crate::cast::to_usize(bits.trailing_zeros()));
            bits &= bits - 1;
        }
    }

    impl PageBits {
        /// An all-clear bitmap covering `npages` pages.
        pub fn new(npages: usize) -> PageBits {
            PageBits {
                words: vec![0; npages.div_ceil(64)],
                npages,
            }
        }

        /// An all-set bitmap covering `npages` pages.
        pub fn new_filled(npages: usize) -> PageBits {
            let mut bits = PageBits::new(npages);
            bits.set_range(0, npages);
            bits
        }

        /// Number of pages the bitmap covers.
        pub fn npages(&self) -> usize {
            self.npages
        }

        /// The raw words; trailing bits past `npages` are always zero.
        pub fn words(&self) -> &[u64] {
            &self.words
        }

        /// Word `w` of the bitmap.
        pub fn word(&self, w: usize) -> u64 {
            self.words[w] // tidy:allow(panic-reachability) -- word and page indices derive from addresses bounded by the fixed bitmap size
        }

        /// Whether page `idx` is set.
        pub fn get(&self, idx: usize) -> bool {
            debug_assert!(idx < self.npages);
            self.words[idx / 64] >> (idx % 64) & 1 != 0 // tidy:allow(panic-reachability) -- word and page indices derive from addresses bounded by the fixed bitmap size
        }

        /// Sets page `idx`; returns true if it was newly set.
        pub fn set(&mut self, idx: usize) -> bool {
            self.set_word_bits(idx / 64, 1 << (idx % 64)) != 0
        }

        /// Clears page `idx`; returns true if it was previously set.
        pub fn clear(&mut self, idx: usize) -> bool {
            self.clear_word_bits(idx / 64, 1 << (idx % 64)) != 0
        }

        /// ORs `bits` into word `w`; returns how many were newly set.
        pub fn set_word_bits(&mut self, w: usize, bits: u64) -> u64 {
            let newly = bits & !self.words[w]; // tidy:allow(panic-reachability) -- word and page indices derive from addresses bounded by the fixed bitmap size
            self.words[w] |= bits; // tidy:allow(panic-reachability) -- word and page indices derive from addresses bounded by the fixed bitmap size
            u64::from(newly.count_ones())
        }

        /// Clears `bits` in word `w`; returns how many were set before.
        pub fn clear_word_bits(&mut self, w: usize, bits: u64) -> u64 {
            let had = bits & self.words[w]; // tidy:allow(panic-reachability) -- word and page indices derive from addresses bounded by the fixed bitmap size
            self.words[w] &= !bits; // tidy:allow(panic-reachability) -- word and page indices derive from addresses bounded by the fixed bitmap size
            u64::from(had.count_ones())
        }

        /// Sets every page in `[first, last)`; returns the newly-set
        /// count.
        pub fn set_range(&mut self, first: usize, last: usize) -> u64 {
            debug_assert!(first <= last && last <= self.npages);
            masked_words(first, last)
                .map(|(w, mask)| self.set_word_bits(w, mask))
                .sum()
        }

        /// Clears every page in `[first, last)`; returns the
        /// previously-set count.
        pub fn clear_range(&mut self, first: usize, last: usize) -> u64 {
            debug_assert!(first <= last && last <= self.npages);
            masked_words(first, last)
                .map(|(w, mask)| self.clear_word_bits(w, mask))
                .sum()
        }

        /// Number of set pages in `[first, last)`.
        pub fn count_range(&self, first: usize, last: usize) -> u64 {
            debug_assert!(first <= last && last <= self.npages);
            masked_words(first, last)
                .map(|(w, mask)| u64::from((self.words[w] & mask).count_ones())) // tidy:allow(panic-reachability) -- word and page indices derive from addresses bounded by the fixed bitmap size
                .sum()
        }

        /// Number of set pages in the whole bitmap.
        pub fn count(&self) -> u64 {
            self.words.iter().map(|w| u64::from(w.count_ones())).sum()
        }
    }

    impl snapshot::Snapshot for PageBits {
        fn snap(&self, w: &mut snapshot::Writer) {
            let Self { words, npages } = self;
            w.usize(*npages);
            for word in words {
                w.u64(*word);
            }
        }

        fn restore(r: &mut snapshot::Reader<'_>) -> Result<PageBits, snapshot::SnapError> {
            let npages = r.usize()?;
            let nwords = npages.div_ceil(64);
            if nwords > r.remaining() / 8 {
                return Err(snapshot::SnapError::Corrupt("PageBits length exceeds input"));
            }
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(r.u64()?);
            }
            let tail = npages % 64;
            if tail != 0 {
                if let Some(last) = words.last() {
                    if last >> tail != 0 {
                        return Err(snapshot::SnapError::Corrupt(
                            "PageBits has bits set past the page count",
                        ));
                    }
                }
            }
            Ok(PageBits { words, npages })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn masked_words_covers_partial_and_full_words() {
            let spans: Vec<(usize, u64)> = masked_words(60, 70).collect();
            assert_eq!(spans, vec![(0, 0xF << 60), (1, 0x3F)]);
            let spans: Vec<(usize, u64)> = masked_words(64, 128).collect();
            assert_eq!(spans, vec![(1, u64::MAX)]);
            assert_eq!(masked_words(5, 5).count(), 0);
        }

        #[test]
        fn range_ops_report_deltas() {
            let mut bits = PageBits::new(200);
            assert_eq!(bits.set_range(10, 150), 140);
            // Re-setting an overlapping range only counts new bits.
            assert_eq!(bits.set_range(0, 20), 10);
            assert_eq!(bits.count_range(0, 200), 150);
            assert_eq!(bits.count_range(100, 200), 50);
            assert_eq!(bits.clear_range(0, 64), 64);
            assert_eq!(bits.count(), 86);
        }

        #[test]
        fn single_bit_ops_round_trip() {
            let mut bits = PageBits::new(100);
            assert!(bits.set(63));
            assert!(!bits.set(63));
            assert!(bits.get(63));
            assert!(bits.clear(63));
            assert!(!bits.clear(63));
            assert_eq!(PageBits::new_filled(100).count(), 100);
        }
    }
}

pub mod reference {
    //! The naive byte-per-page flag store this crate used before the
    //! packed-bitmap rewrite.
    //!
    //! Kept on purpose: property tests drive it in lockstep with the
    //! bitmap implementation as an executable oracle, and the Criterion
    //! benches use it as the baseline side of the range-op comparisons.

    use super::page_flags;

    /// `Vec<u8>` of flag bytes, one per page.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct NaivePages {
        flags: Vec<u8>,
    }

    impl NaivePages {
        /// All pages zeroed.
        pub fn new(npages: usize) -> NaivePages {
            NaivePages::new_with(npages, 0)
        }

        /// All pages initialised to `init` flags.
        pub fn new_with(npages: usize, init: u8) -> NaivePages {
            NaivePages {
                flags: vec![init; npages],
            }
        }

        /// Number of pages.
        pub fn npages(&self) -> usize {
            self.flags.len()
        }

        /// Raw flags of page `idx`.
        pub fn get(&self, idx: usize) -> u8 {
            self.flags[idx] // tidy:allow(panic-reachability) -- word and page indices derive from addresses bounded by the fixed bitmap size
        }

        /// Sets `flag` on page `idx`; returns true if newly set.
        pub fn set_flag(&mut self, idx: usize, flag: u8) -> bool {
            let had = self.flags[idx] & flag != 0; // tidy:allow(panic-reachability) -- word and page indices derive from addresses bounded by the fixed bitmap size
            self.flags[idx] |= flag; // tidy:allow(panic-reachability) -- word and page indices derive from addresses bounded by the fixed bitmap size
            !had
        }

        /// Clears `flag` on page `idx`; returns true if previously set.
        pub fn clear_flag(&mut self, idx: usize, flag: u8) -> bool {
            let had = self.flags[idx] & flag != 0; // tidy:allow(panic-reachability) -- word and page indices derive from addresses bounded by the fixed bitmap size
            self.flags[idx] &= !flag; // tidy:allow(panic-reachability) -- word and page indices derive from addresses bounded by the fixed bitmap size
            had
        }

        /// Sets `flag` over `[first, last)`; returns the newly-set count.
        pub fn set_flag_range(&mut self, flag: u8, first: usize, last: usize) -> u64 {
            crate::cast::to_u64((first..last).filter(|&idx| self.set_flag(idx, flag)).count())
        }

        /// Clears `flag` over `[first, last)`; returns the
        /// previously-set count.
        pub fn clear_flag_range(&mut self, flag: u8, first: usize, last: usize) -> u64 {
            crate::cast::to_u64((first..last).filter(|&idx| self.clear_flag(idx, flag)).count())
        }

        /// Pages in `[first, last)` with `flag` set.
        pub fn count_flag_range(&self, flag: u8, first: usize, last: usize) -> u64 {
            let n = self.flags[first..last]
                .iter()
                .filter(|&&f| f & flag != 0)
                .count();
            crate::cast::to_u64(n)
        }

        /// Pages with `flag` set anywhere in the store.
        pub fn count_flag(&self, flag: u8) -> u64 {
            self.count_flag_range(flag, 0, self.flags.len())
        }

        /// Pages that are resident and clean (hold page-cache refs when
        /// file-backed).
        pub fn for_each_clean_resident(&self, mut f: impl FnMut(usize)) {
            for (idx, &flags) in self.flags.iter().enumerate() {
                if flags & page_flags::RESIDENT != 0 && flags & page_flags::DIRTY == 0 {
                    f(idx);
                }
            }
        }
    }
}

use pagebits::{for_each_bit, masked_words, PageBits};

/// A virtual address in a simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Byte offset addition.
    pub fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }

    /// True if this address is page-aligned.
    pub fn is_page_aligned(self) -> bool {
        self.0.is_multiple_of(PAGE_SIZE)
    }
}

/// Memory protection for a mapping or page range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prot {
    /// No access: the range is uncommitted; touching it is an error.
    None,
    /// Read-only access.
    Read,
    /// Read-write access.
    ReadWrite,
}

impl Prot {
    /// Alias matching the common `PROT_READ | PROT_WRITE` spelling.
    pub const READ_WRITE: Prot = Prot::ReadWrite;
}

/// What backs a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingKind {
    /// Anonymous private memory (heaps, malloc arenas, stacks).
    Anonymous,
    /// A `MAP_PRIVATE` file mapping starting at offset zero of `file`
    /// (shared libraries and runtime images). Clean pages are shared
    /// through the page cache; written pages become private copies.
    PrivateFile(FileId),
}

/// Per-page state flags.
pub mod page_flags {
    /// Page is backed by a physical page.
    pub const RESIDENT: u8 = 1;
    /// Page was written since it was mapped (anon) or is a private CoW
    /// copy (file-backed).
    pub const DIRTY: u8 = 2;
    /// Page contents live on the swap device.
    pub const SWAPPED: u8 = 4;
    /// Page is protected `PROT_NONE` (uncommitted).
    pub const NOACCESS: u8 = 8;
}

/// The outcome of touching a range: how many faults of each kind the
/// access incurred. The cost model converts this into simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TouchOutcome {
    /// Pages that had to be zero-filled (first touch, or touch after a
    /// release).
    pub zero_fill_faults: u64,
    /// File-backed pages faulted in from the page cache or disk.
    pub file_faults: u64,
    /// Pages brought back from the swap device.
    pub swap_ins: u64,
}

impl TouchOutcome {
    /// Total faults of any kind.
    pub fn total_faults(&self) -> u64 {
        self.zero_fill_faults + self.file_faults + self.swap_ins
    }

    /// Accumulates another outcome into this one.
    pub fn merge(&mut self, other: TouchOutcome) {
        self.zero_fill_faults += other.zero_fill_faults;
        self.file_faults += other.file_faults;
        self.swap_ins += other.swap_ins;
    }
}

/// A contiguous virtual mapping.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// First address of the mapping (page-aligned).
    pub start: VirtAddr,
    /// What backs the mapping.
    pub kind: MappingKind,
    /// Human-readable name, as it would appear in `smaps` (e.g.
    /// `"[heap:java]"`, `"libjvm.so"`).
    pub name: String,
    /// One bitmap per flag; all four cover the same page count.
    resident: PageBits,
    dirty: PageBits,
    swapped: PageBits,
    noaccess: PageBits,
    /// Count of pages with `RESIDENT` set (kept in sync incrementally;
    /// debug builds re-derive it from the bitmap after every mutation).
    resident_pages: u64,
    /// Count of pages with `DIRTY` set.
    dirty_pages: u64,
    /// Count of pages with `SWAPPED` set.
    swapped_pages: u64,
    /// Pages whose flag state may have changed since the last
    /// checkpoint epoch (set conservatively by every mutating range
    /// op, cleared by [`Mapping::clear_epoch_dirty`]). This is
    /// durability-layer *tracking*, not memory state: it is excluded
    /// from the canonical snapshot encoding so checkpoints of equal
    /// memory states stay byte-identical whatever their checkpoint
    /// history, and a restore starts it clean.
    epoch_dirty: PageBits,
}

impl Mapping {
    fn new(start: VirtAddr, npages: usize, kind: MappingKind, prot: Prot, name: &str) -> Mapping {
        let noaccess = if matches!(prot, Prot::None) {
            PageBits::new_filled(npages)
        } else {
            PageBits::new(npages)
        };
        Mapping {
            start,
            kind,
            name: name.to_string(),
            resident: PageBits::new(npages),
            dirty: PageBits::new(npages),
            swapped: PageBits::new(npages),
            noaccess,
            resident_pages: 0,
            dirty_pages: 0,
            swapped_pages: 0,
            // A mapping that did not exist at the last checkpoint is
            // dirty in full.
            epoch_dirty: PageBits::new_filled(npages),
        }
    }

    /// True if any page changed since the last checkpoint epoch.
    pub fn is_epoch_dirty(&self) -> bool {
        self.epoch_dirty.words().iter().any(|&w| w != 0)
    }

    /// Pages marked dirty-since-epoch.
    pub fn epoch_dirty_pages(&self) -> u64 {
        self.epoch_dirty.count()
    }

    /// Marks the whole epoch-dirty bitmap clean: called when a
    /// checkpoint (full or delta) captures this mapping.
    pub fn clear_epoch_dirty(&mut self) {
        self.epoch_dirty = PageBits::new(self.page_count());
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> u64 {
        crate::cast::to_u64(self.page_count()) * PAGE_SIZE
    }

    /// True if the mapping has zero pages (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.page_count() == 0
    }

    /// One-past-the-end address.
    pub fn end(&self) -> VirtAddr {
        VirtAddr(self.start.0 + self.len())
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_pages * PAGE_SIZE
    }

    /// Bytes currently dirty.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty_pages * PAGE_SIZE
    }

    /// Bytes currently on swap.
    pub fn swapped_bytes(&self) -> u64 {
        self.swapped_pages * PAGE_SIZE
    }

    /// Raw flags for page `idx`, composed from the four bitmaps.
    pub fn page(&self, idx: usize) -> u8 {
        let mut flags = 0;
        if self.resident.get(idx) {
            flags |= page_flags::RESIDENT;
        }
        if self.dirty.get(idx) {
            flags |= page_flags::DIRTY;
        }
        if self.swapped.get(idx) {
            flags |= page_flags::SWAPPED;
        }
        if self.noaccess.get(idx) {
            flags |= page_flags::NOACCESS;
        }
        flags
    }

    /// Number of pages in the mapping.
    pub fn page_count(&self) -> usize {
        self.resident.npages()
    }

    /// Converts an address inside the mapping to a page index.
    fn page_index(&self, addr: VirtAddr) -> usize {
        debug_assert!(addr >= self.start && addr < self.end());
        crate::cast::to_usize((addr.0 - self.start.0) / PAGE_SIZE)
    }

    fn set_flag_range(&mut self, flag: u8, first: usize, last: usize) -> u64 {
        self.epoch_dirty.set_range(first, last);
        match flag {
            page_flags::RESIDENT => {
                let n = self.resident.set_range(first, last);
                self.resident_pages += n;
                n
            }
            page_flags::DIRTY => {
                let n = self.dirty.set_range(first, last);
                self.dirty_pages += n;
                n
            }
            page_flags::SWAPPED => {
                let n = self.swapped.set_range(first, last);
                self.swapped_pages += n;
                n
            }
            page_flags::NOACCESS => self.noaccess.set_range(first, last),
            _ => unreachable!("set_flag_range takes a single flag"), // tidy:allow(panic-reachability) -- callers pass exactly one of the defined flag constants
        }
    }

    fn clear_flag_range(&mut self, flag: u8, first: usize, last: usize) -> u64 {
        self.epoch_dirty.set_range(first, last);
        match flag {
            page_flags::RESIDENT => {
                let n = self.resident.clear_range(first, last);
                self.resident_pages -= n;
                n
            }
            page_flags::DIRTY => {
                let n = self.dirty.clear_range(first, last);
                self.dirty_pages -= n;
                n
            }
            page_flags::SWAPPED => {
                let n = self.swapped.clear_range(first, last);
                self.swapped_pages -= n;
                n
            }
            page_flags::NOACCESS => self.noaccess.clear_range(first, last),
            _ => unreachable!("clear_flag_range takes a single flag"), // tidy:allow(panic-reachability) -- callers pass exactly one of the defined flag constants
        }
    }

    /// Calls `f` with the index of every resident, clean page in
    /// `[first, last)` — the pages that hold page-cache references when
    /// the mapping is file-backed.
    pub fn for_each_clean_resident_in(&self, first: usize, last: usize, mut f: impl FnMut(usize)) {
        for (w, mask) in masked_words(first, last) {
            for_each_bit(w, self.resident.word(w) & !self.dirty.word(w) & mask, &mut f);
        }
    }

    /// Calls `f` with the index of every resident, clean page.
    pub fn for_each_clean_resident_page(&self, f: impl FnMut(usize)) {
        self.for_each_clean_resident_in(0, self.page_count(), f);
    }

    /// Number of pages that are both resident and dirty (the resident
    /// private-dirty set of `smaps`).
    pub fn resident_dirty_pages(&self) -> u64 {
        self.resident
            .words()
            .iter()
            .zip(self.dirty.words())
            .map(|(&r, &d)| u64::from((r & d).count_ones()))
            .sum()
    }

    /// Resident bytes within `[addr, addr + len)` (the `pmap` view that
    /// Desiccant uses to size a HotSpot heap, §4.5.2).
    ///
    /// A partial trailing page counts in full: a 100-byte probe covers
    /// the one page it starts on, as `pmap` would report it.
    pub fn resident_bytes_in(&self, addr: VirtAddr, len: u64) -> u64 {
        // Whole-mapping probes are frequent (heap-residency sampling);
        // serve them from the maintained counter.
        if addr == self.start && len == self.len() {
            return self.resident_bytes();
        }
        let first = self.page_index(addr);
        let last = (first + crate::cast::to_usize(len.div_ceil(PAGE_SIZE))).min(self.page_count());
        self.resident.count_range(first, last) * PAGE_SIZE
    }

    /// Re-derives the incremental counters from the bitmaps. Debug
    /// builds run this after every mutating operation; release builds
    /// skip it.
    fn verify_counters(&self) {
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.resident_pages,
                self.resident.count(),
                "resident counter drift in `{}`",
                self.name
            );
            assert_eq!(
                self.dirty_pages,
                self.dirty.count(),
                "dirty counter drift in `{}`",
                self.name
            );
            assert_eq!(
                self.swapped_pages,
                self.swapped.count(),
                "swapped counter drift in `{}`",
                self.name
            );
        }
    }

    /// Touches `[first, last)`, faulting pages in word batches.
    ///
    /// Protection is validated up front, so a faulting touch leaves the
    /// mapping unchanged.
    fn touch_range(
        &mut self,
        files: &mut FileRegistry,
        first: usize,
        last: usize,
        write: bool,
    ) -> SimOsResult<TouchOutcome> {
        for (w, mask) in masked_words(first, last) {
            let bad = self.noaccess.word(w) & mask;
            if bad != 0 {
                let idx = w * 64 + crate::cast::to_usize(bad.trailing_zeros());
                return Err(SimOsError::ProtectionViolation {
                    addr: VirtAddr(self.start.0 + crate::cast::to_u64(idx) * PAGE_SIZE),
                });
            }
        }
        let mut out = TouchOutcome::default();
        self.epoch_dirty.set_range(first, last);
        for (w, mask) in masked_words(first, last) {
            let resident = self.resident.word(w) & mask;
            let absent = mask & !resident;
            let swap_in = absent & self.swapped.word(w);
            out.swap_ins += u64::from(swap_in.count_ones());
            let fresh = absent & !swap_in;
            match self.kind {
                MappingKind::Anonymous => {
                    out.zero_fill_faults += u64::from(fresh.count_ones());
                }
                MappingKind::PrivateFile(file) => {
                    out.file_faults += u64::from(fresh.count_ones());
                    // Read faults join the page cache; write faults go
                    // straight to a private copy and never join it.
                    if !write {
                        for_each_bit(w, fresh, |idx| files.inc_mapper(file, idx));
                    }
                }
            }
            self.swapped_pages -= self.swapped.clear_word_bits(w, swap_in);
            self.resident_pages += self.resident.set_word_bits(w, absent);
            if write {
                // A first write to a clean, already-resident file page
                // breaks CoW: the page leaves the page cache.
                if let MappingKind::PrivateFile(file) = self.kind {
                    let cow = resident & !self.dirty.word(w);
                    for_each_bit(w, cow, |idx| files.dec_mapper(file, idx));
                }
                self.dirty_pages += self.dirty.set_word_bits(w, mask);
            }
        }
        Ok(out)
    }

    /// `madvise(MADV_DONTNEED)` over `[first, last)`: contents (and any
    /// swapped copies) are discarded. Returns freed resident bytes.
    fn release_range(&mut self, files: &mut FileRegistry, first: usize, last: usize) -> u64 {
        if let MappingKind::PrivateFile(file) = self.kind {
            self.for_each_clean_resident_in(first, last, |idx| files.dec_mapper(file, idx));
        }
        let freed = self.clear_flag_range(page_flags::RESIDENT, first, last) * PAGE_SIZE;
        self.clear_flag_range(page_flags::SWAPPED, first, last);
        self.clear_flag_range(page_flags::DIRTY, first, last);
        freed
    }

    /// Protection change over `[first, last)`. `Prot::None` also frees
    /// the backing pages (HotSpot-uncommit semantics); returns the
    /// bytes freed.
    fn protect_range(
        &mut self,
        files: &mut FileRegistry,
        first: usize,
        last: usize,
        prot: Prot,
    ) -> u64 {
        match prot {
            Prot::None => {
                // Contents are discarded like a release, and the range
                // becomes inaccessible until re-protected.
                let freed = self.release_range(files, first, last);
                self.set_flag_range(page_flags::NOACCESS, first, last);
                freed
            }
            Prot::Read | Prot::ReadWrite => {
                self.clear_flag_range(page_flags::NOACCESS, first, last);
                0
            }
        }
    }

    /// Moves the resident pages of `[first, last)` to swap. Anonymous
    /// and dirty file pages go to the swap device; clean file pages are
    /// simply dropped (they can be re-read). Returns bytes removed from
    /// residency.
    fn swap_out_range(&mut self, files: &mut FileRegistry, first: usize, last: usize) -> u64 {
        let mut swapped_bytes = 0;
        self.epoch_dirty.set_range(first, last);
        for (w, mask) in masked_words(first, last) {
            let resident = self.resident.word(w) & mask;
            if resident == 0 {
                continue;
            }
            swapped_bytes += u64::from(resident.count_ones()) * PAGE_SIZE;
            let to_swap = match self.kind {
                MappingKind::Anonymous => resident,
                MappingKind::PrivateFile(file) => {
                    let clean = resident & !self.dirty.word(w);
                    for_each_bit(w, clean, |idx| files.dec_mapper(file, idx));
                    resident & self.dirty.word(w)
                }
            };
            self.swapped_pages += self.swapped.set_word_bits(w, to_swap);
            self.resident_pages -= self.resident.clear_word_bits(w, resident);
        }
        swapped_bytes
    }
}

/// A per-process virtual address space.
///
/// Mappings are kept in an ordered map from start address; lookups walk
/// to the candidate mapping in `O(log n)`.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    mappings: BTreeMap<u64, Mapping>,
    /// Next address handed out by non-fixed `mmap`; grows upward from a
    /// conventional base to keep addresses stable and readable.
    next_addr: u64,
    /// Upper bound of the usable address range.
    limit: u64,
    /// Whether the mapping *set* changed since the last checkpoint
    /// epoch: set at creation and by `mmap`/`munmap`. Tracking state,
    /// excluded from the canonical encoding (see [`Mapping`]).
    structure_dirty: bool,
    /// Start addresses unmapped since the last checkpoint epoch, so a
    /// delta can erase them before upserting dirty mappings.
    removed_since_epoch: BTreeSet<u64>,
}

/// Base of the `mmap` allocation area.
const MMAP_BASE: u64 = 0x0000_7000_0000_0000 >> 16 << 16;
/// End of the usable address range (48-bit canonical user space).
const ADDR_LIMIT: u64 = 0x0000_7fff_ffff_f000;

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace {
            mappings: BTreeMap::new(),
            next_addr: MMAP_BASE,
            limit: ADDR_LIMIT,
            // A space that did not exist at the last checkpoint is
            // structurally dirty until one captures it.
            structure_dirty: true,
            removed_since_epoch: BTreeSet::new(),
        }
    }

    /// Iterates over all mappings in address order.
    pub fn mappings(&self) -> impl Iterator<Item = &Mapping> {
        self.mappings.values()
    }

    /// True if anything here — mapping contents or the mapping set —
    /// changed since the last checkpoint epoch.
    pub fn is_epoch_dirty(&self) -> bool {
        self.structure_dirty
            || !self.removed_since_epoch.is_empty()
            || self.mappings.values().any(Mapping::is_epoch_dirty)
    }

    /// Mappings with any page dirtied since the last checkpoint epoch,
    /// keyed by start address (the delta-checkpoint upsert set).
    pub fn epoch_dirty_mappings(&self) -> impl Iterator<Item = (&u64, &Mapping)> {
        self.mappings.iter().filter(|(_, m)| m.is_epoch_dirty())
    }

    /// Start addresses unmapped since the last checkpoint epoch (the
    /// delta-checkpoint erase set).
    pub fn removed_since_epoch(&self) -> &BTreeSet<u64> {
        &self.removed_since_epoch
    }

    /// Marks the whole space clean: called when a checkpoint (full or
    /// delta) captures it.
    pub fn clear_epoch_dirty(&mut self) {
        self.structure_dirty = false;
        self.removed_since_epoch.clear();
        for m in self.mappings.values_mut() {
            m.clear_epoch_dirty();
        }
    }

    /// Looks up the mapping containing `addr`.
    pub fn mapping_at(&self, addr: VirtAddr) -> Option<&Mapping> {
        self.mappings
            .range(..=addr.0)
            .next_back()
            .map(|(_, m)| m)
            .filter(|m| addr < m.end())
    }

    fn mapping_at_mut(&mut self, addr: VirtAddr) -> Option<&mut Mapping> {
        self.mappings
            .range_mut(..=addr.0)
            .next_back()
            .map(|(_, m)| m)
            .filter(|m| addr < m.end())
    }

    fn validate_range(addr: VirtAddr, len: u64) -> SimOsResult<()> {
        if len == 0 || !addr.is_page_aligned() || !len.is_multiple_of(PAGE_SIZE) {
            return Err(SimOsError::BadAlignment { addr: addr.0, len });
        }
        Ok(())
    }

    /// Resolves `[addr, addr + len)` to its mapping and page range,
    /// checking alignment and bounds.
    fn resolve_range_mut(
        &mut self,
        addr: VirtAddr,
        len: u64,
    ) -> SimOsResult<(&mut Mapping, usize, usize)> {
        Self::validate_range(addr, len)?;
        let m = self
            .mapping_at_mut(addr)
            .ok_or(SimOsError::UnmappedRange { addr, len })?;
        if addr.0 + len > m.end().0 {
            return Err(SimOsError::UnmappedRange { addr, len });
        }
        let first = m.page_index(addr);
        let last = first + crate::cast::to_usize(len / PAGE_SIZE);
        Ok((m, first, last))
    }

    /// Maps `len` bytes (rounded up to pages) at a kernel-chosen
    /// address.
    pub fn mmap(
        &mut self,
        len: u64,
        kind: MappingKind,
        prot: Prot,
        name: &str,
    ) -> SimOsResult<VirtAddr> {
        let len = page_align_up(len.max(1));
        if self.next_addr + len > self.limit {
            return Err(SimOsError::OutOfAddressSpace { requested: len });
        }
        let addr = VirtAddr(self.next_addr);
        // Leave a guard gap between mappings so off-by-one range bugs
        // surface as `UnmappedRange` instead of silently touching a
        // neighbour.
        self.next_addr += len + PAGE_SIZE;
        self.insert_mapping(addr, len, kind, prot, name)?;
        Ok(addr)
    }

    /// Maps `len` bytes at the fixed address `addr`.
    pub fn mmap_at(
        &mut self,
        addr: VirtAddr,
        len: u64,
        kind: MappingKind,
        prot: Prot,
        name: &str,
    ) -> SimOsResult<VirtAddr> {
        Self::validate_range(addr, len)?;
        self.insert_mapping(addr, len, kind, prot, name)?;
        Ok(addr)
    }

    fn insert_mapping(
        &mut self,
        addr: VirtAddr,
        len: u64,
        kind: MappingKind,
        prot: Prot,
        name: &str,
    ) -> SimOsResult<()> {
        let end = addr.0 + len;
        // Check the previous mapping does not run into us and the next
        // does not start inside us.
        if let Some(m) = self.mapping_at(addr) {
            let _ = m;
            return Err(SimOsError::MappingOverlap { addr });
        }
        if self.mappings.range(addr.0..end).next().is_some() {
            return Err(SimOsError::MappingOverlap { addr });
        }
        let npages = crate::cast::to_usize(len / PAGE_SIZE);
        self.mappings
            .insert(addr.0, Mapping::new(addr, npages, kind, prot, name));
        self.structure_dirty = true;
        Ok(())
    }

    /// Unmaps the whole mapping starting exactly at `addr`.
    ///
    /// Partial unmapping (splitting) is not supported; the runtimes in
    /// this reproduction always unmap whole mappings and release page
    /// ranges with [`AddressSpace::release`] instead.
    pub fn munmap(&mut self, files: &mut FileRegistry, addr: VirtAddr) -> SimOsResult<Mapping> {
        let m = self
            .mappings
            .remove(&addr.0)
            .ok_or(SimOsError::UnmappedRange { addr, len: 0 })?;
        self.structure_dirty = true;
        self.removed_since_epoch.insert(addr.0);
        // Drop page-cache references held by this mapping.
        if let MappingKind::PrivateFile(file) = m.kind {
            m.for_each_clean_resident_page(|idx| files.dec_mapper(file, idx));
        }
        Ok(m)
    }

    /// Changes the protection of `[addr, addr + len)` (within a single
    /// mapping).
    ///
    /// Setting [`Prot::None`] models HotSpot's uncommit: the range
    /// becomes inaccessible *and* its physical pages are freed, exactly
    /// like HotSpot's `os::uncommit_memory`. Re-protecting the range
    /// readable/writable recommits it; the next touch zero-fills.
    pub fn mprotect(
        &mut self,
        files: &mut FileRegistry,
        addr: VirtAddr,
        len: u64,
        prot: Prot,
    ) -> SimOsResult<u64> {
        let (m, first, last) = self.resolve_range_mut(addr, len)?;
        let freed = m.protect_range(files, first, last, prot);
        m.verify_counters();
        Ok(freed)
    }

    /// Touches `[addr, addr + len)`, faulting pages in as needed.
    ///
    /// Returns how many faults of each kind occurred so the caller can
    /// charge simulated time. A range containing a `PROT_NONE` page
    /// fails up front without touching anything.
    pub fn touch(
        &mut self,
        files: &mut FileRegistry,
        addr: VirtAddr,
        len: u64,
        write: bool,
    ) -> SimOsResult<TouchOutcome> {
        let (m, first, last) = self.resolve_range_mut(addr, len)?;
        let out = m.touch_range(files, first, last, write)?;
        m.verify_counters();
        Ok(out)
    }

    /// Releases the physical pages of `[addr, addr + len)` back to the
    /// OS (`madvise(MADV_DONTNEED)` semantics): the virtual range stays
    /// mapped, contents are discarded, and the next touch zero-fills.
    ///
    /// Returns the number of bytes that were actually resident.
    pub fn release(
        &mut self,
        files: &mut FileRegistry,
        addr: VirtAddr,
        len: u64,
    ) -> SimOsResult<u64> {
        let (m, first, last) = self.resolve_range_mut(addr, len)?;
        let freed = m.release_range(files, first, last);
        m.verify_counters();
        Ok(freed)
    }

    /// Moves the resident pages of `[addr, addr + len)` to swap.
    ///
    /// Returns the number of bytes swapped out. Clean file pages are
    /// simply dropped (they can be re-read), dirty/anonymous pages go to
    /// the swap device. This models the paper's §5.6 swapping baseline,
    /// which has no runtime guidance about which pages matter.
    pub fn swap_out(
        &mut self,
        files: &mut FileRegistry,
        addr: VirtAddr,
        len: u64,
    ) -> SimOsResult<u64> {
        let (m, first, last) = self.resolve_range_mut(addr, len)?;
        let swapped = m.swap_out_range(files, first, last);
        m.verify_counters();
        Ok(swapped)
    }

    /// Next address non-fixed `mmap` would hand out. Exposed for the
    /// delta-checkpoint encoder, which must carry it so a folded space
    /// re-encodes byte-identically.
    pub fn next_addr(&self) -> u64 {
        self.next_addr
    }

    /// Upper bound of the usable address range (see
    /// [`AddressSpace::next_addr`] for why it is exposed).
    pub fn addr_limit(&self) -> u64 {
        self.limit
    }

    /// Resident bytes across the whole address space.
    pub fn resident_bytes(&self) -> u64 {
        self.mappings.values().map(Mapping::resident_bytes).sum()
    }

    /// Resident bytes within `[addr, addr + len)`, the `pmap` view.
    pub fn resident_bytes_in(&self, addr: VirtAddr, len: u64) -> SimOsResult<u64> {
        if len == 0 || !addr.is_page_aligned() {
            return Err(SimOsError::BadAlignment { addr: addr.0, len });
        }
        let m = self
            .mapping_at(addr)
            .ok_or(SimOsError::UnmappedRange { addr, len })?;
        if addr.0 + len > m.end().0 {
            return Err(SimOsError::UnmappedRange { addr, len });
        }
        Ok(m.resident_bytes_in(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_and_files() -> (AddressSpace, FileRegistry) {
        (AddressSpace::new(), FileRegistry::new())
    }

    #[test]
    fn mmap_then_touch_makes_pages_resident() {
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(8 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "t")
            .unwrap();
        assert_eq!(s.resident_bytes(), 0);
        let out = s.touch(&mut f, a, 3 * PAGE_SIZE, true).unwrap();
        assert_eq!(out.zero_fill_faults, 3);
        assert_eq!(s.resident_bytes(), 3 * PAGE_SIZE);
        // Touching again faults nothing.
        let out = s.touch(&mut f, a, 3 * PAGE_SIZE, true).unwrap();
        assert_eq!(out.total_faults(), 0);
    }

    #[test]
    fn release_discards_and_refaults() {
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(4 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "t")
            .unwrap();
        s.touch(&mut f, a, 4 * PAGE_SIZE, true).unwrap();
        let freed = s.release(&mut f, a, 2 * PAGE_SIZE).unwrap();
        assert_eq!(freed, 2 * PAGE_SIZE);
        assert_eq!(s.resident_bytes(), 2 * PAGE_SIZE);
        let out = s.touch(&mut f, a, 4 * PAGE_SIZE, false).unwrap();
        assert_eq!(out.zero_fill_faults, 2);
    }

    #[test]
    fn prot_none_uncommits_and_blocks_access() {
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(4 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "t")
            .unwrap();
        s.touch(&mut f, a, 4 * PAGE_SIZE, true).unwrap();
        let freed = s.mprotect(&mut f, a, 4 * PAGE_SIZE, Prot::None).unwrap();
        assert_eq!(freed, 4 * PAGE_SIZE);
        assert_eq!(s.resident_bytes(), 0);
        let err = s.touch(&mut f, a, PAGE_SIZE, false).unwrap_err();
        assert!(matches!(err, SimOsError::ProtectionViolation { .. }));
        // Recommit and touch again.
        s.mprotect(&mut f, a, 4 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        let out = s.touch(&mut f, a, PAGE_SIZE, true).unwrap();
        assert_eq!(out.zero_fill_faults, 1);
    }

    #[test]
    fn swap_out_and_back_in() {
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(4 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "t")
            .unwrap();
        s.touch(&mut f, a, 4 * PAGE_SIZE, true).unwrap();
        let swapped = s.swap_out(&mut f, a, 4 * PAGE_SIZE).unwrap();
        assert_eq!(swapped, 4 * PAGE_SIZE);
        assert_eq!(s.resident_bytes(), 0);
        let out = s.touch(&mut f, a, 4 * PAGE_SIZE, false).unwrap();
        assert_eq!(out.swap_ins, 4);
        assert_eq!(s.resident_bytes(), 4 * PAGE_SIZE);
    }

    #[test]
    fn file_pages_share_through_page_cache() {
        let mut f = FileRegistry::new();
        let lib = f.register("libjvm.so", 4 * PAGE_SIZE);
        let mut s1 = AddressSpace::new();
        let mut s2 = AddressSpace::new();
        let a1 = s1
            .mmap(4 * PAGE_SIZE, MappingKind::PrivateFile(lib), Prot::Read, "libjvm.so")
            .unwrap();
        let a2 = s2
            .mmap(4 * PAGE_SIZE, MappingKind::PrivateFile(lib), Prot::Read, "libjvm.so")
            .unwrap();
        s1.touch(&mut f, a1, 4 * PAGE_SIZE, false).unwrap();
        assert_eq!(f.mapper_count(lib, 0), 1);
        s2.touch(&mut f, a2, 4 * PAGE_SIZE, false).unwrap();
        assert_eq!(f.mapper_count(lib, 0), 2);
        s1.release(&mut f, a1, 4 * PAGE_SIZE).unwrap();
        assert_eq!(f.mapper_count(lib, 0), 1);
    }

    #[test]
    fn cow_write_privatizes_file_page() {
        let mut f = FileRegistry::new();
        let lib = f.register("libjvm.so", 2 * PAGE_SIZE);
        let mut s = AddressSpace::new();
        let a = s
            .mmap(
                2 * PAGE_SIZE,
                MappingKind::PrivateFile(lib),
                Prot::ReadWrite,
                "libjvm.so",
            )
            .unwrap();
        s.touch(&mut f, a, 2 * PAGE_SIZE, false).unwrap();
        assert_eq!(f.mapper_count(lib, 0), 1);
        // Write to the first page only: it leaves the page cache.
        s.touch(&mut f, a, PAGE_SIZE, true).unwrap();
        assert_eq!(f.mapper_count(lib, 0), 0);
        assert_eq!(f.mapper_count(lib, 1), 1);
        let m = s.mapping_at(a).unwrap();
        assert_eq!(m.dirty_bytes(), PAGE_SIZE);
    }

    #[test]
    fn overlapping_fixed_mapping_is_rejected() {
        let (mut s, _f) = space_and_files();
        let a = s
            .mmap(4 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "x")
            .unwrap();
        let err = s
            .mmap_at(
                a.offset(PAGE_SIZE),
                PAGE_SIZE,
                MappingKind::Anonymous,
                Prot::ReadWrite,
                "y",
            )
            .unwrap_err();
        assert!(matches!(err, SimOsError::MappingOverlap { .. }));
    }

    #[test]
    fn unaligned_ranges_are_rejected() {
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(4 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "x")
            .unwrap();
        assert!(s.touch(&mut f, VirtAddr(a.0 + 1), PAGE_SIZE, false).is_err());
        assert!(s.touch(&mut f, a, 100, false).is_err());
    }

    #[test]
    fn touch_past_mapping_end_is_rejected() {
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(2 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "x")
            .unwrap();
        let err = s.touch(&mut f, a, 3 * PAGE_SIZE, false).unwrap_err();
        assert!(matches!(err, SimOsError::UnmappedRange { .. }));
    }

    #[test]
    fn pmap_counts_only_requested_range() {
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(8 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "x")
            .unwrap();
        s.touch(&mut f, a, 2 * PAGE_SIZE, true).unwrap();
        s.touch(&mut f, a.offset(6 * PAGE_SIZE), PAGE_SIZE, true).unwrap();
        assert_eq!(
            s.resident_bytes_in(a, 4 * PAGE_SIZE).unwrap(),
            2 * PAGE_SIZE
        );
        assert_eq!(
            s.resident_bytes_in(a, 8 * PAGE_SIZE).unwrap(),
            3 * PAGE_SIZE
        );
    }

    #[test]
    fn pmap_counts_partial_trailing_page() {
        // Regression: a probe whose length is not page-aligned must
        // still count the page its tail lands on. The old
        // `len / PAGE_SIZE` rounding silently dropped it.
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(8 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "x")
            .unwrap();
        s.touch(&mut f, a, 3 * PAGE_SIZE, true).unwrap();
        let m = s.mapping_at(a).unwrap();
        // A sub-page probe covers exactly the one page it starts on.
        assert_eq!(m.resident_bytes_in(a, 100), PAGE_SIZE);
        // One byte past a page boundary rounds up to the next page.
        assert_eq!(m.resident_bytes_in(a, PAGE_SIZE + 1), 2 * PAGE_SIZE);
        // An unaligned probe over the whole resident prefix sees all of
        // it, not `len / PAGE_SIZE` pages of it.
        assert_eq!(
            m.resident_bytes_in(a, 2 * PAGE_SIZE + 100),
            3 * PAGE_SIZE
        );
        // A probe running past the resident prefix is clamped to the
        // mapping and still exact.
        assert_eq!(
            m.resident_bytes_in(a.offset(2 * PAGE_SIZE), 6 * PAGE_SIZE - 1),
            PAGE_SIZE
        );
    }

    #[test]
    fn word_boundary_ranges_are_exact() {
        // Exercise ranges that straddle, start, and end on 64-page word
        // boundaries, where mask construction is easiest to get wrong.
        let (mut s, mut f) = space_and_files();
        let a = s
            .mmap(200 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite, "w")
            .unwrap();
        // Touch [60, 70) — straddles the first word boundary.
        let out = s
            .touch(&mut f, a.offset(60 * PAGE_SIZE), 10 * PAGE_SIZE, true)
            .unwrap();
        assert_eq!(out.zero_fill_faults, 10);
        // Touch exactly the second word, [64, 128).
        let out = s
            .touch(&mut f, a.offset(64 * PAGE_SIZE), 64 * PAGE_SIZE, true)
            .unwrap();
        assert_eq!(out.zero_fill_faults, 58);
        assert_eq!(s.resident_bytes(), 68 * PAGE_SIZE);
        // Release across both boundaries, [63, 129).
        let freed = s
            .release(&mut f, a.offset(63 * PAGE_SIZE), 66 * PAGE_SIZE)
            .unwrap();
        assert_eq!(freed, 65 * PAGE_SIZE);
        assert_eq!(s.resident_bytes(), 3 * PAGE_SIZE);
        assert_eq!(
            s.resident_bytes_in(a, 200 * PAGE_SIZE).unwrap(),
            3 * PAGE_SIZE
        );
    }

    #[test]
    fn munmap_removes_mapping_and_cache_refs() {
        let mut f = FileRegistry::new();
        let lib = f.register("node", 2 * PAGE_SIZE);
        let mut s = AddressSpace::new();
        let a = s
            .mmap(2 * PAGE_SIZE, MappingKind::PrivateFile(lib), Prot::Read, "node")
            .unwrap();
        s.touch(&mut f, a, 2 * PAGE_SIZE, false).unwrap();
        assert_eq!(f.mapper_count(lib, 1), 1);
        s.munmap(&mut f, a).unwrap();
        assert_eq!(f.mapper_count(lib, 1), 0);
        assert!(s.mapping_at(a).is_none());
    }
}

/// Checkpoint codec impls, kept in this module so exhaustive
/// destructuring sees every private field (a new field is a compile
/// error here, not a silently un-snapshotted one).
mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for VirtAddr {
        fn snap(&self, w: &mut Writer) {
            let Self(raw) = self;
            w.u64(*raw);
        }

        fn restore(r: &mut Reader<'_>) -> Result<VirtAddr, SnapError> {
            Ok(VirtAddr(r.u64()?))
        }
    }

    impl Snapshot for MappingKind {
        fn snap(&self, w: &mut Writer) {
            match self {
                Self::Anonymous => w.u8(0),
                Self::PrivateFile(file) => {
                    w.u8(1);
                    file.snap(w);
                }
            }
        }

        fn restore(r: &mut Reader<'_>) -> Result<MappingKind, SnapError> {
            match r.u8()? {
                0 => Ok(MappingKind::Anonymous),
                1 => Ok(MappingKind::PrivateFile(FileId::restore(r)?)),
                _ => Err(SnapError::Corrupt("unknown MappingKind tag")),
            }
        }
    }

    impl Snapshot for Mapping {
        fn snap(&self, w: &mut Writer) {
            // `epoch_dirty` is checkpoint *tracking*, not memory state:
            // two runs at the same memory state must encode
            // byte-identically even if their checkpoint cadences
            // differed, so it stays out of the canonical bytes and a
            // restore starts it clean.
            let Self {
                start,
                kind,
                name,
                resident,
                dirty,
                swapped,
                noaccess,
                resident_pages,
                dirty_pages,
                swapped_pages,
                epoch_dirty: _,
            } = self;
            start.snap(w);
            kind.snap(w);
            w.str(name);
            resident.snap(w);
            dirty.snap(w);
            swapped.snap(w);
            noaccess.snap(w);
            w.u64(*resident_pages);
            w.u64(*dirty_pages);
            w.u64(*swapped_pages);
        }

        fn restore(r: &mut Reader<'_>) -> Result<Mapping, SnapError> {
            let start = VirtAddr::restore(r)?;
            let kind = MappingKind::restore(r)?;
            let name = r.str()?;
            let resident = PageBits::restore(r)?;
            let dirty = PageBits::restore(r)?;
            let swapped = PageBits::restore(r)?;
            let noaccess = PageBits::restore(r)?;
            let resident_pages = r.u64()?;
            let dirty_pages = r.u64()?;
            let swapped_pages = r.u64()?;
            if !start.is_page_aligned() {
                return Err(SnapError::Corrupt("Mapping start is not page-aligned"));
            }
            let npages = resident.npages();
            if dirty.npages() != npages
                || swapped.npages() != npages
                || noaccess.npages() != npages
            {
                return Err(SnapError::Corrupt("Mapping bitmaps cover differing page counts"));
            }
            if resident_pages != resident.count()
                || dirty_pages != dirty.count()
                || swapped_pages != swapped.count()
            {
                return Err(SnapError::Corrupt("Mapping counters disagree with bitmaps"));
            }
            Ok(Mapping {
                start,
                kind,
                name,
                resident,
                dirty,
                swapped,
                noaccess,
                resident_pages,
                dirty_pages,
                swapped_pages,
                epoch_dirty: PageBits::new(npages),
            })
        }
    }

    impl Snapshot for AddressSpace {
        fn snap(&self, w: &mut Writer) {
            // Tracking fields excluded — see the Mapping impl. NOTE:
            // the platform's delta-checkpoint fold re-synthesizes this
            // exact layout (mappings map, next_addr, limit) from
            // per-mapping blobs; changing the order here requires
            // changing `faas::platform`'s fold in lockstep.
            let Self {
                mappings,
                next_addr,
                limit,
                structure_dirty: _,
                removed_since_epoch: _,
            } = self;
            mappings.snap(w);
            w.u64(*next_addr);
            w.u64(*limit);
        }

        fn restore(r: &mut Reader<'_>) -> Result<AddressSpace, SnapError> {
            let mappings = BTreeMap::<u64, Mapping>::restore(r)?;
            let next_addr = r.u64()?;
            let limit = r.u64()?;
            for (addr, m) in &mappings {
                if *addr != m.start.0 {
                    return Err(SnapError::Corrupt("AddressSpace key disagrees with mapping start"));
                }
            }
            Ok(AddressSpace {
                mappings,
                next_addr,
                limit,
                structure_dirty: false,
                removed_since_epoch: BTreeSet::new(),
            })
        }
    }

    /// The O(dirty) delta codec: what an incremental checkpoint carries
    /// for one address space, against the state at the last epoch.
    impl AddressSpace {
        /// Serializes this space's changes since the last checkpoint
        /// epoch: the scalars, the starts of mappings unmapped since,
        /// and every epoch-dirty mapping in full (mappings are the
        /// delta granule; pages are the dirtiness granule). The
        /// counterpart of [`AddressSpace::restore_delta`].
        pub fn snap_delta(&self, w: &mut Writer) {
            w.u64(self.next_addr);
            w.u64(self.limit);
            w.usize(self.removed_since_epoch.len());
            for a in &self.removed_since_epoch {
                w.u64(*a);
            }
            let dirty: Vec<(&u64, &Mapping)> = self.epoch_dirty_mappings().collect();
            w.usize(dirty.len());
            for (start, m) in dirty {
                w.u64(*start);
                m.snap(w);
            }
        }

        /// Folds a [`AddressSpace::snap_delta`] payload over `base` (or
        /// an empty space, for a process spawned since the parent
        /// epoch): removals apply first, then upserts — a mapping
        /// unmapped and re-mapped at the same address within one epoch
        /// ends up at its new contents. The result re-encodes (via
        /// [`Snapshot::snap`]) byte-identically to a full checkpoint of
        /// the same state; removing a start the base never had is a
        /// tolerated no-op for exactly that reason.
        pub fn restore_delta(
            base: Option<AddressSpace>,
            r: &mut Reader<'_>,
        ) -> Result<AddressSpace, SnapError> {
            let mut space = base.unwrap_or_default();
            space.next_addr = r.u64()?;
            space.limit = r.u64()?;
            let removed = r.seq_len()?;
            for _ in 0..removed {
                let start = r.u64()?;
                space.mappings.remove(&start);
            }
            let upserts = r.seq_len()?;
            for _ in 0..upserts {
                let start = r.u64()?;
                let m = Mapping::restore(r)?;
                if m.start.0 != start {
                    return Err(SnapError::Corrupt("delta mapping key disagrees with start"));
                }
                space.mappings.insert(start, m);
            }
            space.structure_dirty = false;
            space.removed_since_epoch.clear();
            Ok(space)
        }
    }
}
