//! Swap-device statistics.
//!
//! Page state for swapped pages lives in the mappings themselves (see
//! [`crate::mem`]); this module only aggregates device-level counters
//! used by the §5.6 swapping-baseline experiments.

use crate::clock::SimDuration;
use crate::cost::CostModel;

/// Counters for a simulated swap device.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwapStats {
    /// Pages written out over the device lifetime.
    pub pages_out: u64,
    /// Pages read back over the device lifetime.
    pub pages_in: u64,
}

impl SwapStats {
    /// Records `bytes` swapped out.
    pub fn record_out(&mut self, bytes: u64) {
        self.pages_out += bytes / crate::mem::PAGE_SIZE;
    }

    /// Records `pages` swapped in.
    pub fn record_in(&mut self, pages: u64) {
        self.pages_in += pages;
    }

    /// Total swap-in latency at the given cost model.
    pub fn swap_in_time(&self, costs: &CostModel) -> SimDuration {
        costs.swap_in * self.pages_in
    }
}

impl snapshot::Snapshot for SwapStats {
    fn snap(&self, w: &mut snapshot::Writer) {
        let Self {
            pages_out,
            pages_in,
        } = self;
        w.u64(*pages_out);
        w.u64(*pages_in);
    }

    fn restore(r: &mut snapshot::Reader<'_>) -> Result<SwapStats, snapshot::SnapError> {
        Ok(SwapStats {
            pages_out: r.u64()?,
            pages_in: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::PAGE_SIZE;

    #[test]
    fn counters_accumulate() {
        let mut s = SwapStats::default();
        s.record_out(10 * PAGE_SIZE);
        s.record_in(4);
        assert_eq!(s.pages_out, 10);
        assert_eq!(s.pages_in, 4);
        let costs = CostModel::default();
        assert_eq!(s.swap_in_time(&costs), costs.swap_in * 4);
    }
}
