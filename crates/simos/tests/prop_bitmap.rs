//! Property tests pinning the packed-bitmap page state to the naive
//! byte-per-page reference model.
//!
//! [`simos::mem::reference::NaivePages`] is the pre-bitmap
//! representation, kept as an executable oracle. Every property here
//! drives an arbitrary operation sequence through both the real
//! [`AddressSpace`] (word-masked bitmaps) and a per-page naive replay
//! of the same semantics, then requires identical observable state:
//! per-page flags, resident/dirty/swapped byte counters, fault
//! classifications, and `pmap`-style range counts (including unaligned
//! probe lengths).

use proptest::prelude::*;
use simos::mem::page_flags as pf;
use simos::mem::reference::NaivePages;
use simos::mem::{AddressSpace, MappingKind, Prot, VirtAddr, PAGE_SIZE};
use simos::system::FileRegistry;

/// Pages in the mapping under test; spans several 64-page words so
/// ranges cross word boundaries in both directions.
const NPAGES: usize = 200;

#[derive(Debug, Clone, Copy)]
enum Kind {
    Anon,
    File,
}

/// Naive per-page replay of the mapping semantics, flag-for-flag the
/// loop structure the bitmap implementation replaced.
struct NaiveMapping {
    pages: NaivePages,
    kind: Kind,
}

impl NaiveMapping {
    fn new(kind: Kind) -> NaiveMapping {
        NaiveMapping {
            pages: NaivePages::new(NPAGES),
            kind,
        }
    }

    /// Returns `(zero_fill, file_faults, swap_ins)`, or `Err(idx)` on
    /// the first `PROT_NONE` page (touch validates up front).
    fn touch(&mut self, first: usize, last: usize, write: bool) -> Result<(u64, u64, u64), usize> {
        if let Some(idx) = (first..last).find(|&idx| self.pages.get(idx) & pf::NOACCESS != 0) {
            return Err(idx);
        }
        let (mut zero, mut file, mut swap) = (0, 0, 0);
        for idx in first..last {
            let flags = self.pages.get(idx);
            if flags & pf::RESIDENT == 0 {
                if flags & pf::SWAPPED != 0 {
                    swap += 1;
                    self.pages.clear_flag(idx, pf::SWAPPED);
                } else {
                    match self.kind {
                        Kind::Anon => zero += 1,
                        Kind::File => file += 1,
                    }
                }
                self.pages.set_flag(idx, pf::RESIDENT);
            }
            if write {
                self.pages.set_flag(idx, pf::DIRTY);
            }
        }
        Ok((zero, file, swap))
    }

    fn release(&mut self, first: usize, last: usize) -> u64 {
        let mut freed = 0;
        for idx in first..last {
            if self.pages.clear_flag(idx, pf::RESIDENT) {
                freed += PAGE_SIZE;
            }
            self.pages.clear_flag(idx, pf::SWAPPED);
            self.pages.clear_flag(idx, pf::DIRTY);
        }
        freed
    }

    fn prot_none(&mut self, first: usize, last: usize) -> u64 {
        let freed = self.release(first, last);
        self.pages.set_flag_range(pf::NOACCESS, first, last);
        freed
    }

    fn prot_rw(&mut self, first: usize, last: usize) {
        self.pages.clear_flag_range(pf::NOACCESS, first, last);
    }

    fn swap_out(&mut self, first: usize, last: usize) -> u64 {
        let mut swapped = 0;
        for idx in first..last {
            let flags = self.pages.get(idx);
            if flags & pf::RESIDENT == 0 {
                continue;
            }
            swapped += PAGE_SIZE;
            self.pages.clear_flag(idx, pf::RESIDENT);
            // Clean file pages are dropped, not swapped.
            if matches!(self.kind, Kind::Anon) || flags & pf::DIRTY != 0 {
                self.pages.set_flag(idx, pf::SWAPPED);
            }
        }
        swapped
    }

    fn count(&self, flag: u8) -> u64 {
        self.pages.count_flag(flag)
    }
}

/// `(op, a, b)` raw tuples; the replay folds `a`/`b` into an in-bounds
/// page range so every generated op is valid.
fn ops_strategy() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
    proptest::collection::vec((0u8..5, 0usize..10_000, 0usize..10_000), 1..40)
}

fn page_range(a: usize, b: usize) -> (usize, usize) {
    let first = a % NPAGES;
    let len = 1 + b % (NPAGES - first);
    (first, first + len)
}

fn addr_of(base: VirtAddr, page: usize) -> VirtAddr {
    base.offset(page as u64 * PAGE_SIZE)
}

/// Runs `ops` against both implementations and checks full agreement
/// after every step.
fn check_equivalence(kind: Kind, ops: &[(u8, usize, usize)]) -> Result<(), TestCaseError> {
    let mut files = FileRegistry::new();
    let mapping_kind = match kind {
        Kind::Anon => MappingKind::Anonymous,
        Kind::File => {
            let file = files.register("libref.so", NPAGES as u64 * PAGE_SIZE);
            MappingKind::PrivateFile(file)
        }
    };
    let mut space = AddressSpace::new();
    let base = space
        .mmap(NPAGES as u64 * PAGE_SIZE, mapping_kind, Prot::ReadWrite, "eq")
        .unwrap();
    let mut naive = NaiveMapping::new(kind);

    for &(op, a, b) in ops {
        let (first, last) = page_range(a, b);
        let addr = addr_of(base, first);
        let len = (last - first) as u64 * PAGE_SIZE;
        match op {
            0 | 1 => {
                let write = op == 1;
                let real = space.touch(&mut files, addr, len, write);
                match naive.touch(first, last, write) {
                    Ok((zero, file, swap)) => {
                        let out = real.expect("bitmap touch failed where naive succeeded");
                        prop_assert_eq!(out.zero_fill_faults, zero);
                        prop_assert_eq!(out.file_faults, file);
                        prop_assert_eq!(out.swap_ins, swap);
                    }
                    Err(idx) => {
                        let err = real.expect_err("bitmap touch succeeded where naive faulted");
                        match err {
                            simos::error::SimOsError::ProtectionViolation { addr } => {
                                prop_assert_eq!(addr, addr_of(base, idx));
                            }
                            other => {
                                return Err(TestCaseError(format!("unexpected error {other:?}")))
                            }
                        }
                    }
                }
            }
            2 => {
                let freed = space.release(&mut files, addr, len).unwrap();
                prop_assert_eq!(freed, naive.release(first, last));
            }
            3 => {
                let swapped = space.swap_out(&mut files, addr, len).unwrap();
                prop_assert_eq!(swapped, naive.swap_out(first, last));
            }
            _ => {
                // Alternate protection changes on `b`'s parity so both
                // directions get coverage.
                if b % 2 == 0 {
                    let freed = space.mprotect(&mut files, addr, len, Prot::None).unwrap();
                    prop_assert_eq!(freed, naive.prot_none(first, last));
                } else {
                    space
                        .mprotect(&mut files, addr, len, Prot::ReadWrite)
                        .unwrap();
                    naive.prot_rw(first, last);
                }
            }
        }

        let m = space.mapping_at(base).unwrap();
        for idx in 0..NPAGES {
            prop_assert_eq!(
                m.page(idx),
                naive.pages.get(idx),
                "flag mismatch at page {}",
                idx
            );
        }
        prop_assert_eq!(m.resident_bytes(), naive.count(pf::RESIDENT) * PAGE_SIZE);
        prop_assert_eq!(m.dirty_bytes(), naive.count(pf::DIRTY) * PAGE_SIZE);
        prop_assert_eq!(m.swapped_bytes(), naive.count(pf::SWAPPED) * PAGE_SIZE);

        // `pmap` range counts agree, including an unaligned probe
        // length that covers a partial trailing page.
        let probe_len = len - PAGE_SIZE + 1 + (a % PAGE_SIZE as usize) as u64;
        let probe_last = (first + (probe_len as usize).div_ceil(PAGE_SIZE as usize)).min(NPAGES);
        prop_assert_eq!(
            m.resident_bytes_in(addr, probe_len),
            naive.pages.count_flag_range(pf::RESIDENT, first, probe_last) * PAGE_SIZE
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bitmap_matches_naive_reference_anon(ops in ops_strategy()) {
        check_equivalence(Kind::Anon, &ops)?;
    }

    #[test]
    fn bitmap_matches_naive_reference_file(ops in ops_strategy()) {
        check_equivalence(Kind::File, &ops)?;
    }

    #[test]
    fn metric_ordering_holds_under_sharing(nshare in 1usize..8, touched in 1usize..64) {
        let mut sys = simos::system::System::new();
        let lib = sys.register_file("libshared.so", 64 * PAGE_SIZE);
        let mut pids = Vec::new();
        for _ in 0..nshare {
            let pid = sys.spawn_process();
            sys.map_library(pid, lib).unwrap();
            pids.push(pid);
        }
        // One process also dirties private heap pages.
        let first = pids[0];
        let heap = sys
            .mmap(first, 64 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite)
            .unwrap();
        sys.touch(first, heap, touched as u64 * PAGE_SIZE, true).unwrap();

        let mut total_pss = 0.0;
        for &pid in &pids {
            let (uss, pss, rss) = (sys.uss(pid) as f64, sys.pss(pid), sys.rss(pid) as f64);
            prop_assert!(uss <= pss + 1e-6, "USS {} > PSS {}", uss, pss);
            prop_assert!(pss <= rss + 1e-6, "PSS {} > RSS {}", pss, rss);
            total_pss += pss;
        }
        // PSS is a partition: summed over every sharer it reconstructs
        // the machine's resident bytes exactly (library counted once,
        // private heap once).
        let machine = (64 + touched) as f64 * PAGE_SIZE as f64;
        prop_assert!((total_pss - machine).abs() < 1e-3, "sum PSS {} != {}", total_pss, machine);
    }
}
