//! Property tests for the simulated virtual-memory model.
//!
//! These drive random sequences of memory operations against a single
//! mapping and check the accounting invariants that the rest of the
//! reproduction depends on: metric ordering (USS ≤ PSS ≤ RSS),
//! conservation of resident pages, and refault behaviour after release.

use proptest::prelude::*;
use simos::mem::{MappingKind, Prot, PAGE_SIZE};
use simos::metrics;
use simos::System;

const NPAGES: u64 = 64;

/// A random operation against the test mapping.
#[derive(Debug, Clone)]
enum Op {
    Touch { first: u64, count: u64, write: bool },
    Release { first: u64, count: u64 },
    SwapOut { first: u64, count: u64 },
    ProtNone { first: u64, count: u64 },
    ProtRw { first: u64, count: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let range = (0..NPAGES, 1..=NPAGES).prop_map(|(first, count)| {
        let first = first.min(NPAGES - 1);
        let count = count.min(NPAGES - first);
        (first, count)
    });
    prop_oneof![
        (range.clone(), any::<bool>()).prop_map(|((first, count), write)| Op::Touch {
            first,
            count,
            write
        }),
        range.clone().prop_map(|(first, count)| Op::Release { first, count }),
        range.clone().prop_map(|(first, count)| Op::SwapOut { first, count }),
        range.clone().prop_map(|(first, count)| Op::ProtNone { first, count }),
        range.prop_map(|(first, count)| Op::ProtRw { first, count }),
    ]
}

fn apply(sys: &mut System, pid: simos::Pid, base: simos::VirtAddr, op: &Op) {
    let addr = |first: u64| base.offset(first * PAGE_SIZE);
    match *op {
        Op::Touch { first, count, write } => {
            // A touch may legitimately fail on a PROT_NONE range.
            let _ = sys.touch(pid, addr(first), count * PAGE_SIZE, write);
        }
        Op::Release { first, count } => {
            sys.release(pid, addr(first), count * PAGE_SIZE).unwrap();
        }
        Op::SwapOut { first, count } => {
            sys.swap_out(pid, addr(first), count * PAGE_SIZE).unwrap();
        }
        Op::ProtNone { first, count } => {
            sys.mprotect(pid, addr(first), count * PAGE_SIZE, Prot::None)
                .unwrap();
        }
        Op::ProtRw { first, count } => {
            sys.mprotect(pid, addr(first), count * PAGE_SIZE, Prot::ReadWrite)
                .unwrap();
        }
    }
}

proptest! {
    /// USS ≤ PSS ≤ RSS after any operation sequence, and RSS never
    /// exceeds the mapping size.
    #[test]
    fn metric_ordering_holds(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let base = sys
            .mmap(pid, NPAGES * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite)
            .unwrap();
        for op in &ops {
            apply(&mut sys, pid, base, op);
            let (u, p, r) = (
                metrics::uss(&sys, pid) as f64,
                metrics::pss(&sys, pid),
                metrics::rss(&sys, pid) as f64,
            );
            prop_assert!(u <= p + 1e-6, "USS {u} > PSS {p}");
            prop_assert!(p <= r + 1e-6, "PSS {p} > RSS {r}");
            prop_assert!(r <= (NPAGES * PAGE_SIZE) as f64);
        }
    }

    /// A page is never simultaneously resident and swapped; resident +
    /// swapped never exceeds the mapping size.
    #[test]
    fn resident_and_swap_are_disjoint(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let base = sys
            .mmap(pid, NPAGES * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite)
            .unwrap();
        for op in &ops {
            apply(&mut sys, pid, base, op);
            let space = sys.space(pid).unwrap();
            let m = space.mapping_at(base).unwrap();
            for idx in 0..m.page_count() {
                let flags = m.page(idx);
                let resident = flags & simos::mem::page_flags::RESIDENT != 0;
                let swapped = flags & simos::mem::page_flags::SWAPPED != 0;
                prop_assert!(!(resident && swapped), "page {idx} both resident and swapped");
            }
            prop_assert!(m.resident_bytes() + m.swapped_bytes() <= NPAGES * PAGE_SIZE);
        }
    }

    /// After a full-range release, RSS of the mapping is exactly zero
    /// and a full touch faults every page exactly once.
    #[test]
    fn release_then_touch_faults_every_page(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let base = sys
            .mmap(pid, NPAGES * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite)
            .unwrap();
        for op in &ops {
            apply(&mut sys, pid, base, op);
        }
        // Normalize protection, then release everything.
        sys.mprotect(pid, base, NPAGES * PAGE_SIZE, Prot::ReadWrite).unwrap();
        sys.release(pid, base, NPAGES * PAGE_SIZE).unwrap();
        prop_assert_eq!(metrics::rss(&sys, pid), 0);
        let out = sys.touch(pid, base, NPAGES * PAGE_SIZE, true).unwrap();
        prop_assert_eq!(out.zero_fill_faults, NPAGES);
        prop_assert_eq!(out.swap_ins, 0);
    }

    /// Page-cache mapper counts stay consistent when two processes map
    /// and unmap the same library under random per-process operations.
    #[test]
    fn page_cache_refcounts_consistent(
        ops1 in prop::collection::vec(op_strategy(), 1..30),
        ops2 in prop::collection::vec(op_strategy(), 1..30),
        kill_first in any::<bool>(),
    ) {
        let mut sys = System::new();
        let lib = sys.register_file("libtest.so", NPAGES * PAGE_SIZE);
        let p1 = sys.spawn_process();
        let p2 = sys.spawn_process();
        let a1 = sys
            .mmap_lib(p1, lib)
            .unwrap();
        let a2 = sys
            .mmap_lib(p2, lib)
            .unwrap();
        for op in &ops1 {
            apply(&mut sys, p1, a1, op);
        }
        for op in &ops2 {
            apply(&mut sys, p2, a2, op);
        }
        if kill_first {
            sys.kill_process(p1).unwrap();
        } else {
            sys.kill_process(p2).unwrap();
        }
        sys.kill_process(if kill_first { p2 } else { p1 }).unwrap();
        // With no process left, every mapper count must be zero.
        for idx in 0..NPAGES as usize {
            prop_assert_eq!(sys.files().mapper_count(lib, idx), 0, "page {}", idx);
        }
    }
}

/// Helper trait so the property tests can map a library writable (the
/// ops include writes, which must be legal).
trait MmapLib {
    fn mmap_lib(&mut self, pid: simos::Pid, lib: simos::FileId)
        -> simos::SimOsResult<simos::VirtAddr>;
}

impl MmapLib for System {
    fn mmap_lib(
        &mut self,
        pid: simos::Pid,
        lib: simos::FileId,
    ) -> simos::SimOsResult<simos::VirtAddr> {
        let size = self.files().size(lib);
        let addr = self.mmap_named(
            pid,
            size,
            MappingKind::PrivateFile(lib),
            Prot::ReadWrite,
            "libtest.so",
        )?;
        self.touch(pid, addr, size, false)?;
        Ok(addr)
    }
}
