//! The Desiccant manager: activation, selection, feedback.

use faas::{FrozenView, InstanceId, MemoryManager, ReclaimProfile};
use simos::SimTime;

use crate::config::{DesiccantConfig, SelectionPolicy};
use crate::profile::ProfileStore;

/// Desiccant's own counters (the platform separately accounts the CPU
/// its reclamations consume).
#[derive(Debug, Clone, Copy, Default)]
pub struct DesiccantStats {
    /// Sweeps where the activation condition held.
    pub activations: u64,
    /// Sweeps where it did not.
    pub idle_sweeps: u64,
    /// Reclamations requested.
    pub reclaims_requested: u64,
    /// Evictions observed (what drives the threshold down).
    pub evictions_seen: u64,
    /// Reclamation failures reported by the platform; the affected
    /// instances are deprioritized until they reclaim successfully.
    pub reclaim_failures_seen: u64,
}

/// The freeze-aware memory manager (see the crate docs).
#[derive(Debug, Clone)]
pub struct Desiccant {
    config: DesiccantConfig,
    profiles: ProfileStore,
    threshold: f64,
    stats: DesiccantStats,
}

impl Desiccant {
    /// Creates a manager with the given configuration.
    pub fn new(config: DesiccantConfig) -> Desiccant {
        config.validate();
        Desiccant {
            config,
            profiles: ProfileStore::new(),
            threshold: config.low_threshold,
            stats: DesiccantStats::default(),
        }
    }

    /// The current activation threshold (fraction of the cache budget
    /// that frozen instances may occupy before reclamation starts).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Counters.
    pub fn stats(&self) -> DesiccantStats {
        self.stats
    }

    /// The profile store (for inspection in tests and harnesses).
    pub fn profiles(&self) -> &ProfileStore {
        &self.profiles
    }
}

impl MemoryManager for Desiccant {
    fn name(&self) -> &'static str {
        "desiccant"
    }

    fn select_reclaims(
        &mut self,
        now: SimTime,
        cache_budget: u64,
        cache_used: u64,
        frozen: &[FrozenView],
    ) -> Vec<InstanceId> {
        // Activation (§4.2): the platform is under memory pressure and
        // frozen instances hold reclaimable memory. Pressure is judged
        // on total cache occupancy (running instances reserve their
        // budget; frozen ones are charged their measured USS).
        let frozen_used: u64 = frozen.iter().map(|f| f.charge).sum();
        let active = frozen_used > 0
            && cache_used.max(frozen_used) as f64 > self.threshold * cache_budget as f64;
        if !active {
            self.stats.idle_sweeps += 1;
            if self.config.dynamic_threshold {
                self.threshold =
                    (self.threshold + self.config.threshold_step).min(self.config.high_threshold);
            }
            return Vec::new();
        }
        self.stats.activations += 1;

        // Candidates: frozen long enough, not already reclaimed since
        // their last use, and not marked as reclaim-failed — those are
        // left to the platform's LRU eviction (graceful degradation).
        let mut candidates: Vec<&FrozenView> = frozen
            .iter()
            .filter(|f| {
                !f.reclaimed
                    && !self.profiles.is_failed(f.id)
                    && now.saturating_since(f.frozen_since) >= self.config.freeze_timeout
            })
            .collect();

        match self.config.selection {
            SelectionPolicy::Throughput => {
                let mut scored: Vec<(f64, &FrozenView)> = candidates
                    .iter()
                    .map(|f| {
                        let est = self.profiles.estimate(f.id, f.function, f.heap_resident);
                        (est.throughput, *f)
                    })
                    .filter(|(thr, _)| *thr > 0.0)
                    .collect();
                scored.sort_by(|a, b| {
                    b.0.total_cmp(&a.0).then(a.1.id.cmp(&b.1.id))
                });
                candidates = scored.into_iter().map(|(_, f)| f).collect();
            }
            SelectionPolicy::OldestFrozen => {
                candidates.sort_by_key(|f| (f.frozen_since, f.id));
            }
            SelectionPolicy::Unordered => {}
        }

        let picks: Vec<InstanceId> = candidates
            .into_iter()
            .take(self.config.max_reclaims_per_sweep)
            .map(|f| f.id)
            .collect();
        self.stats.reclaims_requested += picks.len() as u64;
        picks
    }

    fn note_eviction(&mut self, _now: SimTime, _function: &str) {
        self.stats.evictions_seen += 1;
        if self.config.dynamic_threshold {
            // §4.5.1: evictions mean the platform is short on memory —
            // snap the threshold down so reclamation kicks in earlier.
            self.threshold = self.config.low_threshold;
        }
    }

    fn note_destroyed(&mut self, id: InstanceId) {
        self.profiles.drop_instance(id);
    }

    fn note_reclaimed(
        &mut self,
        _now: SimTime,
        id: InstanceId,
        function: &str,
        profile: ReclaimProfile,
    ) {
        self.profiles.record(id, function, &profile);
    }

    fn note_reclaim_failed(&mut self, _now: SimTime, id: InstanceId, _function: &str) {
        self.stats.reclaim_failures_seen += 1;
        self.profiles.mark_failed(id);
    }

    fn keep_weak(&self) -> bool {
        self.config.keep_weak
    }

    fn unmap_libs(&self) -> bool {
        self.config.unmap_libs
    }

    fn snapshot_state(&self) -> Vec<u8> {
        use snapshot::Snapshot;
        let Desiccant {
            // Constructor-provided, not state: the restoring manager
            // must already carry the same configuration.
            config: _,
            profiles,
            threshold,
            stats,
        } = self;
        let mut w = snapshot::Writer::new();
        profiles.snap(&mut w);
        threshold.snap(&mut w);
        stats.snap(&mut w);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), snapshot::SnapError> {
        use snapshot::Snapshot;
        let mut r = snapshot::Reader::new(bytes);
        let profiles = ProfileStore::restore(&mut r)?;
        let threshold = f64::restore(&mut r)?;
        let stats = DesiccantStats::restore(&mut r)?;
        r.finish()?;
        if !threshold.is_finite()
            || threshold < self.config.low_threshold
            || threshold > self.config.high_threshold
        {
            return Err(snapshot::SnapError::Corrupt(
                "Desiccant threshold outside configured band",
            ));
        }
        self.profiles = profiles;
        self.threshold = threshold;
        self.stats = stats;
        Ok(())
    }
}

mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for DesiccantStats {
        fn snap(&self, w: &mut Writer) {
            let Self {
                activations,
                idle_sweeps,
                reclaims_requested,
                evictions_seen,
                reclaim_failures_seen,
            } = self;
            activations.snap(w);
            idle_sweeps.snap(w);
            reclaims_requested.snap(w);
            evictions_seen.snap(w);
            reclaim_failures_seen.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<DesiccantStats, SnapError> {
            Ok(DesiccantStats {
                activations: u64::restore(r)?,
                idle_sweeps: u64::restore(r)?,
                reclaims_requested: u64::restore(r)?,
                evictions_seen: u64::restore(r)?,
                reclaim_failures_seen: u64::restore(r)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::SimDuration;

    fn view(
        id: u64,
        function: &'static str,
        frozen_ms: u64,
        heap_resident: u64,
        charge: u64,
    ) -> FrozenView {
        FrozenView {
            id: InstanceId(id),
            function,
            stage: 0,
            frozen_since: SimTime(frozen_ms * 1_000_000),
            heap_resident,
            charge,
            reclaimed: false,
        }
    }

    fn profile(live: u64, cpu_ms: u64) -> ReclaimProfile {
        ReclaimProfile {
            live_bytes: live,
            released_bytes: 0,
            cpu_time: SimDuration::from_millis(cpu_ms),
        }
    }

    const GIB: u64 = 1 << 30;

    #[test]
    fn inactive_below_threshold() {
        let mut d = Desiccant::new(DesiccantConfig::default());
        // 100 MiB frozen in a 2 GiB cache: far below 60 %.
        let frozen = vec![view(1, "fft", 0, 80 << 20, 100 << 20)];
        let picks = d.select_reclaims(SimTime(10_000_000_000), 2 * GIB, 300 << 20, &frozen);
        assert!(picks.is_empty());
        assert_eq!(d.stats().idle_sweeps, 1);
    }

    #[test]
    fn activates_over_threshold_and_respects_timeout() {
        let mut d = Desiccant::new(DesiccantConfig::default());
        let now = SimTime(10_000_000_000);
        let frozen = vec![
            // Frozen long ago: candidate.
            view(1, "fft", 0, 300 << 20, 700 << 20),
            // Frozen 100 ms ago: below the 1 s timeout.
            view(2, "fft", 9_900, 300 << 20, 700 << 20),
        ];
        let picks = d.select_reclaims(now, 2 * GIB, 14 * (100 << 20), &frozen);
        assert_eq!(picks, vec![InstanceId(1)]);
    }

    #[test]
    fn threshold_drops_on_eviction_and_drifts_back() {
        let mut d = Desiccant::new(DesiccantConfig::default());
        let start = d.threshold();
        // Idle sweeps raise it.
        for i in 0..20 {
            d.select_reclaims(SimTime(i), 2 * GIB, 0, &[]);
        }
        assert!(d.threshold() > start);
        d.note_eviction(SimTime(100), "fft");
        assert!((d.threshold() - 0.60).abs() < 1e-9);
    }

    #[test]
    fn static_threshold_never_moves() {
        let mut d = Desiccant::new(DesiccantConfig {
            dynamic_threshold: false,
            ..DesiccantConfig::default()
        });
        for i in 0..10 {
            d.select_reclaims(SimTime(i), 2 * GIB, 0, &[]);
        }
        d.note_eviction(SimTime(100), "fft");
        assert!((d.threshold() - 0.60).abs() < 1e-9);
    }

    #[test]
    fn throughput_selection_prefers_most_reclaimable() {
        let mut d = Desiccant::new(DesiccantConfig {
            max_reclaims_per_sweep: 1,
            ..DesiccantConfig::default()
        });
        // Teach the store: "fat" releases a lot quickly, "lean" barely
        // anything slowly.
        d.note_reclaimed(SimTime(0), InstanceId(1), "fat", profile(10 << 20, 5));
        d.note_reclaimed(SimTime(0), InstanceId(2), "lean", profile(90 << 20, 50));
        let now = SimTime(10_000_000_000);
        let frozen = vec![
            view(20, "lean", 0, 100 << 20, 700 << 20),
            view(10, "fat", 0, 100 << 20, 700 << 20),
        ];
        let picks = d.select_reclaims(now, 2 * GIB, 1400 << 20, &frozen);
        assert_eq!(picks, vec![InstanceId(10)], "fat instance reclaims 9× more per cpu-second");
    }

    #[test]
    fn already_reclaimed_instances_are_skipped() {
        let mut d = Desiccant::new(DesiccantConfig::default());
        let now = SimTime(10_000_000_000);
        let mut v = view(1, "fft", 0, 300 << 20, 1400 << 20);
        v.reclaimed = true;
        let picks = d.select_reclaims(now, 2 * GIB, 1400 << 20, &[v]);
        assert!(picks.is_empty());
    }

    #[test]
    fn batch_limit_is_enforced() {
        let mut d = Desiccant::new(DesiccantConfig {
            max_reclaims_per_sweep: 2,
            ..DesiccantConfig::default()
        });
        let now = SimTime(10_000_000_000);
        let frozen: Vec<FrozenView> = (0..8)
            .map(|i| view(i, "fft", 0, 200 << 20, 200 << 20))
            .collect();
        let picks = d.select_reclaims(now, 2 * GIB, 1600 << 20, &frozen);
        assert_eq!(picks.len(), 2);
    }

    #[test]
    fn reclaim_failed_instances_are_deprioritized_until_success() {
        let mut d = Desiccant::new(DesiccantConfig::default());
        let now = SimTime(10_000_000_000);
        let frozen = vec![view(1, "fft", 0, 300 << 20, 1400 << 20)];
        // Before any failure the instance is selectable.
        assert_eq!(
            d.select_reclaims(now, 2 * GIB, 1400 << 20, &frozen),
            vec![InstanceId(1)]
        );
        // After a failed reclaim it is skipped: LRU eviction handles
        // the pressure instead.
        d.note_reclaim_failed(now, InstanceId(1), "fft");
        assert_eq!(d.stats().reclaim_failures_seen, 1);
        assert!(d.select_reclaims(now, 2 * GIB, 1400 << 20, &frozen).is_empty());
        // A later successful reclaim rehabilitates it.
        d.note_reclaimed(now, InstanceId(1), "fft", profile(10 << 20, 5));
        assert_eq!(
            d.select_reclaims(now, 2 * GIB, 1400 << 20, &frozen),
            vec![InstanceId(1)]
        );
    }

    #[test]
    fn destroyed_instance_profiles_are_dropped() {
        let mut d = Desiccant::new(DesiccantConfig::default());
        d.note_reclaimed(SimTime(0), InstanceId(7), "f", profile(1 << 20, 10));
        assert_eq!(d.profiles().instances_profiled(), 1);
        d.note_destroyed(InstanceId(7));
        assert_eq!(d.profiles().instances_profiled(), 0);
    }
}
