//! Desiccant configuration.

use simos::SimDuration;

/// How candidate instances are ranked (ablations for §4.5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// The paper's policy: highest estimated reclamation throughput
    /// first.
    Throughput,
    /// Ablation: oldest-frozen first (a pure LRU sweep).
    OldestFrozen,
    /// Ablation: arbitrary order (whatever the platform reports).
    Unordered,
}

/// Tunables of the [`crate::Desiccant`] manager.
#[derive(Debug, Clone, Copy)]
pub struct DesiccantConfig {
    /// Instances must have been frozen at least this long to be
    /// considered (§4.3's first principle).
    pub freeze_timeout: SimDuration,
    /// The threshold the manager snaps down to when the platform
    /// evicts (60 % by default, §4.5.1).
    pub low_threshold: f64,
    /// The ceiling the threshold drifts back to during calm periods.
    pub high_threshold: f64,
    /// Per-sweep upward drift of the threshold.
    pub threshold_step: f64,
    /// Whether the threshold adapts at all (ablation switch); when
    /// false it stays at `low_threshold`.
    pub dynamic_threshold: bool,
    /// Candidate ranking policy.
    pub selection: SelectionPolicy,
    /// §4.7: preserve weakly referenced objects during reclamation GCs
    /// (avoids JIT deoptimization).
    pub keep_weak: bool,
    /// §4.6: unmap private, unmodified, file-backed mappings of
    /// single-user frozen instances.
    pub unmap_libs: bool,
    /// Upper bound on reclamations started per sweep tick.
    pub max_reclaims_per_sweep: usize,
}

impl Default for DesiccantConfig {
    fn default() -> DesiccantConfig {
        DesiccantConfig {
            freeze_timeout: SimDuration::from_secs(1),
            low_threshold: 0.60,
            high_threshold: 0.90,
            threshold_step: 0.001,
            dynamic_threshold: true,
            selection: SelectionPolicy::Throughput,
            keep_weak: true,
            unmap_libs: true,
            max_reclaims_per_sweep: 4,
        }
    }
}

impl DesiccantConfig {
    /// Sanity checks.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configurations.
    pub fn validate(&self) {
        assert!(
            0.0 < self.low_threshold && self.low_threshold <= self.high_threshold,
            "thresholds must satisfy 0 < low <= high"
        );
        assert!(self.high_threshold <= 1.0);
        assert!(self.threshold_step >= 0.0);
        assert!(self.max_reclaims_per_sweep >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = DesiccantConfig::default();
        c.validate();
        assert!((c.low_threshold - 0.60).abs() < 1e-9);
        assert!(c.keep_weak);
        assert_eq!(c.selection, SelectionPolicy::Throughput);
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn inverted_thresholds_rejected() {
        DesiccantConfig {
            low_threshold: 0.9,
            high_threshold: 0.5,
            ..DesiccantConfig::default()
        }
        .validate();
    }
}
