//! # desiccant — a freeze-aware memory manager for managed FaaS workloads
//!
//! This is the paper's contribution: a memory manager that watches the
//! FaaS platform's instance cache and, under memory pressure, reclaims
//! the *frozen garbage* trapped in paused managed-runtime instances
//! instead of letting the platform destroy whole instances.
//!
//! Desiccant has three parts (§4.1):
//!
//! 1. **Activation** (§4.2, §4.5.1) — it runs only when the memory used
//!    by frozen instances exceeds a threshold that adapts to eviction
//!    pressure: any platform eviction snaps the threshold down to 60 %,
//!    and calm periods let it drift back up, trading CPU for headroom
//!    only when headroom is actually scarce.
//! 2. **Instance selection** (§4.3, §4.5.2) — among instances frozen
//!    longer than a timeout, it picks those with the highest *estimated
//!    reclamation throughput*
//!    `(heap_resident − estimated_live_bytes) / estimated_cpu_time`,
//!    using per-instance profiles collected from previous reclamations,
//!    falling back to same-function profiles and then the global
//!    average for instances never reclaimed before.
//! 3. **Reclamation** (§4.4) — the platform invokes the runtime-side
//!    `reclaim` API (GC + resize + release of all free pages), extends
//!    the runtime's memory profile with the reclamation's accumulated
//!    CPU time, and feeds it back into the profile store. Optional
//!    extras: the §4.6 unmap of single-user library mappings and the
//!    §4.7 weak-reference-preserving GC mode that avoids JIT
//!    deoptimization.
//!
//! The crate implements [`faas::MemoryManager`], so it plugs into the
//! platform exactly like the paper plugs into OpenWhisk — as a
//! non-intrusive background sweeper. Ablation variants (static
//! threshold, random/oldest-first selection) are provided for the
//! design-choice benchmarks.
//!
//! # Examples
//!
//! ```
//! use desiccant::{Desiccant, DesiccantConfig};
//! use faas::platform::{GcMode, Platform};
//! use faas::PlatformConfig;
//! use simos::SimTime;
//!
//! let manager = Desiccant::new(DesiccantConfig::default());
//! let mut p = Platform::new(
//!     PlatformConfig::default(),
//!     workloads::catalog(),
//!     GcMode::Vanilla,
//!     Some(Box::new(manager)),
//! );
//! let f = p.function_index("fft").unwrap();
//! p.submit(SimTime::ZERO, f);
//! p.run_until(SimTime(30_000_000_000));
//! assert_eq!(p.stats().completed, 1);
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod manager;
pub mod profile;

pub use config::{DesiccantConfig, SelectionPolicy};
pub use manager::Desiccant;
pub use profile::{ProfileStore, ThroughputEstimate};
