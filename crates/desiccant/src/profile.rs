//! Reclamation profiles and throughput estimation (§4.5.2).
//!
//! Two facts make the estimator work: live bytes at function exit are
//! stable (FaaS functions are near-stateless), and a tracing
//! collector's cost is proportional to live bytes — so both the numer
//! and denominator of the throughput formula can be estimated from a
//! few samples.

use std::collections::{BTreeMap, BTreeSet};

use faas::slab::{IdMap, Slab};
use faas::{InstanceId, ReclaimProfile};


/// A running mean over observed values.
#[derive(Debug, Clone, Copy, Default)]
struct RunningMean {
    sum: f64,
    n: u64,
}

impl RunningMean {
    fn push(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.sum / self.n as f64)
        }
    }
}

/// Aggregated profile for one instance, function, or the whole fleet.
#[derive(Debug, Clone, Copy, Default)]
struct Profile {
    live_bytes: RunningMean,
    cpu_time_secs: RunningMean,
}

impl Profile {
    fn push(&mut self, p: &ReclaimProfile) {
        self.live_bytes.push(p.live_bytes as f64);
        self.cpu_time_secs.push(p.cpu_time.as_secs_f64().max(1e-9));
    }

    fn estimate(&self) -> Option<(f64, f64)> {
        Some((self.live_bytes.mean()?, self.cpu_time_secs.mean()?))
    }
}

/// An estimated reclamation throughput for a candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputEstimate {
    /// Expected bytes released.
    pub expected_release: f64,
    /// Expected CPU seconds.
    pub expected_cpu_secs: f64,
    /// `expected_release / expected_cpu_secs`.
    pub throughput: f64,
    /// True if no profile existed at any level (the estimate fell back
    /// to "assume everything above zero live bytes is reclaimable").
    pub unprofiled: bool,
}

/// The profile store: per-instance, per-function, and global averages,
/// consulted in that order (§4.5.2's "handling new instances").
#[derive(Debug, Clone, Default)]
pub struct ProfileStore {
    /// Per-instance profiles in a slab arena: the sweep's selection
    /// loop calls [`ProfileStore::estimate`] once per frozen instance,
    /// so the lookup is O(1) via `by_id` instead of a tree walk. The
    /// wire format is unchanged — snapshots still carry id-sorted
    /// `(id, profile)` rows.
    per_instance: Slab<(InstanceId, Profile)>,
    by_id: IdMap,
    per_function: BTreeMap<String, Profile>,
    global: Profile,
    /// Instances whose last reclamation failed: selection skips them
    /// until a successful reclaim (or destruction) clears the mark, so
    /// a wedged runtime degrades to plain LRU eviction instead of
    /// burning CPU on doomed retries.
    failed: BTreeSet<InstanceId>,
}

impl ProfileStore {
    /// Creates an empty store.
    pub fn new() -> ProfileStore {
        ProfileStore::default()
    }

    /// Records a completed reclamation's profile. A success clears any
    /// standing failure mark — the runtime evidently recovered.
    pub fn record(&mut self, id: InstanceId, function: &str, profile: &ReclaimProfile) {
        let h = match self.by_id.get(id) {
            Some(h) => h,
            None => {
                let h = self.per_instance.insert((id, Profile::default()));
                self.by_id.set(id, h);
                h
            }
        };
        if let Some((_, p)) = self.per_instance.get_mut(h) {
            p.push(profile);
        }
        self.per_function
            .entry(function.to_string())
            .or_default()
            .push(profile);
        self.global.push(profile);
        self.failed.remove(&id);
    }

    /// Marks `id` as having failed its last reclamation.
    pub fn mark_failed(&mut self, id: InstanceId) {
        self.failed.insert(id);
    }

    /// Whether `id`'s last reclamation failed.
    pub fn is_failed(&self, id: InstanceId) -> bool {
        self.failed.contains(&id)
    }

    /// Number of instances currently marked failed.
    pub fn failed_count(&self) -> usize {
        self.failed.len()
    }

    /// Drops the per-instance profile of a destroyed instance.
    pub fn drop_instance(&mut self, id: InstanceId) {
        if let Some(h) = self.by_id.clear(id) {
            self.per_instance.remove(h);
        }
        self.failed.remove(&id);
    }

    /// Number of distinct instances with profiles.
    pub fn instances_profiled(&self) -> usize {
        self.per_instance.len()
    }

    /// Estimates the reclamation throughput of an instance whose heap
    /// currently holds `heap_resident` bytes.
    pub fn estimate(
        &self,
        id: InstanceId,
        function: &str,
        heap_resident: u64,
    ) -> ThroughputEstimate {
        let (live, cpu, unprofiled) = self
            .by_id
            .get(id)
            .and_then(|h| self.per_instance.get(h))
            .and_then(|(_, p)| p.estimate())
            .or_else(|| self.per_function.get(function).and_then(Profile::estimate))
            .map(|(l, c)| (l, c, false))
            .or_else(|| self.global.estimate().map(|(l, c)| (l, c, false)))
            // Nothing profiled anywhere yet: assume everything is
            // reclaimable at a nominal cost so bootstrap happens.
            .unwrap_or((0.0, 0.010, true));
        let expected_release = (heap_resident as f64 - live).max(0.0);
        let expected_cpu_secs = cpu.max(1e-9);
        ThroughputEstimate {
            expected_release,
            expected_cpu_secs,
            throughput: expected_release / expected_cpu_secs,
            unprofiled,
        }
    }
}

mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for RunningMean {
        fn snap(&self, w: &mut Writer) {
            let Self { sum, n } = self;
            sum.snap(w);
            n.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<RunningMean, SnapError> {
            Ok(RunningMean {
                sum: f64::restore(r)?,
                n: u64::restore(r)?,
            })
        }
    }

    impl Snapshot for Profile {
        fn snap(&self, w: &mut Writer) {
            let Self {
                live_bytes,
                cpu_time_secs,
            } = self;
            live_bytes.snap(w);
            cpu_time_secs.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<Profile, SnapError> {
            Ok(Profile {
                live_bytes: RunningMean::restore(r)?,
                cpu_time_secs: RunningMean::restore(r)?,
            })
        }
    }

    impl Snapshot for ProfileStore {
        // The per-instance slab is serialized as id-sorted
        // `(id, profile)` rows — byte-identical to the old
        // `BTreeMap<InstanceId, Profile>` wire format, so existing
        // checkpoint digests are unchanged.
        fn snap(&self, w: &mut Writer) {
            let Self {
                per_instance,
                by_id: _,
                per_function,
                global,
                failed,
            } = self;
            let mut rows: Vec<(InstanceId, &Profile)> =
                per_instance.iter().map(|(_, (id, p))| (*id, p)).collect();
            rows.sort_unstable_by_key(|(id, _)| *id);
            w.usize(rows.len());
            for (id, p) in rows {
                id.snap(w);
                p.snap(w);
            }
            per_function.snap(w);
            global.snap(w);
            failed.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<ProfileStore, SnapError> {
            let n = r.seq_len()?;
            let mut per_instance = Slab::new();
            let mut by_id = IdMap::new();
            let mut prev: Option<InstanceId> = None;
            for _ in 0..n {
                let id = InstanceId::restore(r)?;
                if prev.is_some_and(|p| p >= id) {
                    return Err(SnapError::Corrupt("profile table not id-sorted"));
                }
                prev = Some(id);
                let p = Profile::restore(r)?;
                let h = per_instance.insert((id, p));
                by_id.set(id, h);
            }
            Ok(ProfileStore {
                per_instance,
                by_id,
                per_function: BTreeMap::restore(r)?,
                global: Profile::restore(r)?,
                failed: BTreeSet::restore(r)?,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use faas::ReclaimProfile;
        use simos::SimDuration;

        #[test]
        fn profile_store_round_trips() {
            let mut store = ProfileStore::new();
            store.record(
                InstanceId(3),
                "fft",
                &ReclaimProfile {
                    live_bytes: 5 << 20,
                    released_bytes: 20 << 20,
                    cpu_time: SimDuration::from_millis(12),
                },
            );
            store.mark_failed(InstanceId(9));
            let bytes = snapshot::encode(&store);
            let back: ProfileStore = snapshot::decode(&bytes).unwrap();
            assert_eq!(snapshot::encode(&back), bytes);
            assert!(back.is_failed(InstanceId(9)));
            assert_eq!(back.instances_profiled(), 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::SimDuration;

    fn profile(live_mb: u64, cpu_ms: u64) -> ReclaimProfile {
        ReclaimProfile {
            live_bytes: live_mb << 20,
            released_bytes: 0,
            cpu_time: SimDuration::from_millis(cpu_ms),
        }
    }

    #[test]
    fn estimate_prefers_instance_then_function_then_global() {
        let mut store = ProfileStore::new();
        let a = InstanceId(1);
        let b = InstanceId(2);
        store.record(a, "fft", &profile(2, 10));
        store.record(b, "sort", &profile(8, 40));

        // Instance-level profile wins for `a`.
        let est = store.estimate(a, "fft", 32 << 20);
        assert!((est.expected_release - (30 << 20) as f64).abs() < 1.0);
        assert!((est.expected_cpu_secs - 0.010).abs() < 1e-9);

        // Unknown instance of a known function uses the function mean.
        let est = store.estimate(InstanceId(9), "sort", 32 << 20);
        assert!((est.expected_release - (24 << 20) as f64).abs() < 1.0);
        assert!((est.expected_cpu_secs - 0.040).abs() < 1e-9);

        // Unknown function falls back to the global mean (live 5 MiB,
        // cpu 25 ms).
        let est = store.estimate(InstanceId(9), "matrix", 32 << 20);
        assert!((est.expected_release - (27 << 20) as f64).abs() < 1.0);
        assert!((est.expected_cpu_secs - 0.025).abs() < 1e-9);
        assert!(!est.unprofiled);
    }

    #[test]
    fn empty_store_bootstraps_optimistically() {
        let store = ProfileStore::new();
        let est = store.estimate(InstanceId(0), "fft", 16 << 20);
        assert!(est.unprofiled);
        assert!((est.expected_release - (16 << 20) as f64).abs() < 1.0);
        assert!(est.throughput > 0.0);
    }

    #[test]
    fn means_average_multiple_samples() {
        let mut store = ProfileStore::new();
        let id = InstanceId(3);
        store.record(id, "f", &profile(2, 10));
        store.record(id, "f", &profile(4, 30));
        let est = store.estimate(id, "f", 10 << 20);
        // Mean live = 3 MiB, mean cpu = 20 ms.
        assert!((est.expected_release - (7 << 20) as f64).abs() < 1.0);
        assert!((est.expected_cpu_secs - 0.020).abs() < 1e-9);
    }

    #[test]
    fn destroyed_instances_fall_back_to_function_profile() {
        let mut store = ProfileStore::new();
        let id = InstanceId(4);
        store.record(id, "f", &profile(2, 10));
        store.drop_instance(id);
        assert_eq!(store.instances_profiled(), 0);
        // Function-level knowledge survives.
        let est = store.estimate(id, "f", 10 << 20);
        assert!(!est.unprofiled);
        assert!((est.expected_release - (8 << 20) as f64).abs() < 1.0);
    }

    #[test]
    fn failure_marks_clear_on_success_or_destruction() {
        let mut store = ProfileStore::new();
        let a = InstanceId(8);
        let b = InstanceId(9);
        store.mark_failed(a);
        store.mark_failed(b);
        assert!(store.is_failed(a) && store.is_failed(b));
        assert_eq!(store.failed_count(), 2);
        // A later successful reclaim rehabilitates the instance.
        store.record(a, "f", &profile(2, 10));
        assert!(!store.is_failed(a));
        // Destruction clears the mark too (ids are never reused, but
        // the set must not grow without bound).
        store.drop_instance(b);
        assert!(!store.is_failed(b));
        assert_eq!(store.failed_count(), 0);
    }

    #[test]
    fn zero_resident_yields_zero_throughput() {
        let mut store = ProfileStore::new();
        store.record(InstanceId(5), "f", &profile(4, 10));
        let est = store.estimate(InstanceId(5), "f", 1 << 20);
        assert_eq!(est.expected_release, 0.0);
        assert_eq!(est.throughput, 0.0);
    }
}
