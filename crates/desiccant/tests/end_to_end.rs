//! End-to-end: Desiccant on the full platform under trace load.
//!
//! These are the claim-level tests (C1/C2 in the artifact appendix):
//! reclamation actually shrinks frozen instances, profiles accumulate,
//! and under memory pressure Desiccant beats the vanilla baseline on
//! cold boots.

use azure_trace::{build_trace, replay, ReplayConfig};
use desiccant::{Desiccant, DesiccantConfig};
use faas::platform::{GcMode, Platform};
use faas::PlatformConfig;
use simos::{SimDuration, SimTime};

fn pressure_config() -> PlatformConfig {
    // The calibrated defaults already put the 2 GiB cache under
    // pressure at the scale factors used here.
    PlatformConfig::default()
}

fn fast_replay(scale: f64) -> ReplayConfig {
    ReplayConfig {
        scale,
        warmup: SimDuration::from_secs(20),
        warmup_scale: 15.0,
        duration: SimDuration::from_secs(60),
        seed: 11,
        drain: SimDuration::from_secs(20),
    }
}

#[test]
fn desiccant_reclaims_and_profiles_accumulate() {
    let catalog = workloads::catalog();
    let trace = build_trace(&catalog, 11);
    let manager = Desiccant::new(DesiccantConfig {
        // Low static threshold so reclamation definitely triggers in a
        // short test.
        low_threshold: 0.05,
        dynamic_threshold: false,
        freeze_timeout: SimDuration::from_millis(200),
        ..DesiccantConfig::default()
    });
    let mut p = Platform::new(
        pressure_config(),
        catalog,
        GcMode::Vanilla,
        Some(Box::new(manager)),
    );
    let out = replay(&mut p, &trace, &fast_replay(15.0));
    assert!(out.completed > 0);
    assert!(
        p.stats().reclamations > 0,
        "no reclamations happened: {:?}",
        p.stats().reclamations
    );
    assert!(p.stats().reclaimed_bytes > 0);
}

#[test]
fn desiccant_reduces_cold_boots_under_pressure() {
    let catalog = workloads::catalog();
    let trace = build_trace(&catalog, 11);
    let config = fast_replay(20.0);

    let mut vanilla = Platform::new(pressure_config(), catalog.clone(), GcMode::Vanilla, None);
    let v = replay(&mut vanilla, &trace, &config);

    let manager = Desiccant::new(DesiccantConfig::default());
    let mut with_d = Platform::new(
        pressure_config(),
        catalog,
        GcMode::Vanilla,
        Some(Box::new(manager)),
    );
    let d = replay(&mut with_d, &trace, &config);

    assert!(
        d.cold_boot_rate < v.cold_boot_rate,
        "desiccant {:.3}/s not below vanilla {:.3}/s (evictions {} vs {})",
        d.cold_boot_rate,
        v.cold_boot_rate,
        d.evictions,
        v.evictions,
    );
}

#[test]
fn reclamation_cpu_share_is_small() {
    let catalog = workloads::catalog();
    let trace = build_trace(&catalog, 11);
    let manager = Desiccant::new(DesiccantConfig::default());
    let mut p = Platform::new(
        pressure_config(),
        catalog,
        GcMode::Vanilla,
        Some(Box::new(manager)),
    );
    let out = replay(&mut p, &trace, &fast_replay(20.0));
    // §5.3: reclamation introduces at most ~6 % CPU overhead.
    assert!(
        out.reclaim_cpu_fraction < 0.10,
        "reclamation CPU share too high: {:.3}",
        out.reclaim_cpu_fraction
    );
}

#[test]
fn frozen_instances_shrink_after_reclaim() {
    let catalog = workloads::catalog();
    let manager = Desiccant::new(DesiccantConfig {
        low_threshold: 0.01,
        dynamic_threshold: false,
        // Long enough that no reclamation happens between the
        // submissions below; the sweeper only acts after t = 13 s.
        freeze_timeout: SimDuration::from_secs(5),
        ..DesiccantConfig::default()
    });
    let mut p = Platform::new(
        pressure_config(),
        catalog,
        GcMode::Vanilla,
        Some(Box::new(manager)),
    );
    let fft = p.function_index("fft").unwrap();
    // A few invocations to build frozen garbage, then idle time for the
    // sweeper.
    for i in 0..5u64 {
        p.submit(SimTime(i * 2_000_000_000), fft);
    }
    p.run_until(SimTime(12_000_000_000));
    let before: u64 = p.instance_uss().iter().map(|(_, u)| u).sum();
    p.run_until(SimTime(30_000_000_000));
    let after: u64 = p.instance_uss().iter().map(|(_, u)| u).sum();
    assert!(p.stats().reclamations >= 1);
    assert!(
        after < before,
        "reclamation did not shrink the instance: {before} -> {after}"
    );
}
