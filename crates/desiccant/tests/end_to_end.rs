//! End-to-end: Desiccant on the full platform under trace load.
//!
//! These are the claim-level tests (C1/C2 in the artifact appendix):
//! reclamation actually shrinks frozen instances, profiles accumulate,
//! and under memory pressure Desiccant beats the vanilla baseline on
//! cold boots.

use azure_trace::{build_trace, replay, ReplayConfig};
use desiccant::{Desiccant, DesiccantConfig};
use faas::platform::{GcMode, Platform};
use faas::{FaultPlan, PlatformConfig};
use simos::{SimDuration, SimTime};

fn pressure_config() -> PlatformConfig {
    // The calibrated defaults already put the 2 GiB cache under
    // pressure at the scale factors used here.
    PlatformConfig::default()
}

fn fast_replay(scale: f64) -> ReplayConfig {
    ReplayConfig {
        scale,
        warmup: SimDuration::from_secs(20),
        warmup_scale: 15.0,
        duration: SimDuration::from_secs(60),
        seed: 11,
        drain: SimDuration::from_secs(20),
    }
}

#[test]
fn desiccant_reclaims_and_profiles_accumulate() {
    let catalog = workloads::catalog();
    let trace = build_trace(&catalog, 11);
    let manager = Desiccant::new(DesiccantConfig {
        // Low static threshold so reclamation definitely triggers in a
        // short test.
        low_threshold: 0.05,
        dynamic_threshold: false,
        freeze_timeout: SimDuration::from_millis(200),
        ..DesiccantConfig::default()
    });
    let mut p = Platform::new(
        pressure_config(),
        catalog,
        GcMode::Vanilla,
        Some(Box::new(manager)),
    );
    let out = replay(&mut p, &trace, &fast_replay(15.0));
    assert!(out.completed > 0);
    assert!(
        p.stats().reclamations > 0,
        "no reclamations happened: {:?}",
        p.stats().reclamations
    );
    assert!(p.stats().reclaimed_bytes > 0);
}

#[test]
fn desiccant_reduces_cold_boots_under_pressure() {
    let catalog = workloads::catalog();
    let trace = build_trace(&catalog, 11);
    let config = fast_replay(20.0);

    let mut vanilla = Platform::new(pressure_config(), catalog.clone(), GcMode::Vanilla, None);
    let v = replay(&mut vanilla, &trace, &config);

    let manager = Desiccant::new(DesiccantConfig::default());
    let mut with_d = Platform::new(
        pressure_config(),
        catalog,
        GcMode::Vanilla,
        Some(Box::new(manager)),
    );
    let d = replay(&mut with_d, &trace, &config);

    assert!(
        d.cold_boot_rate < v.cold_boot_rate,
        "desiccant {:.3}/s not below vanilla {:.3}/s (evictions {} vs {})",
        d.cold_boot_rate,
        v.cold_boot_rate,
        d.evictions,
        v.evictions,
    );
}

#[test]
fn reclamation_cpu_share_is_small() {
    let catalog = workloads::catalog();
    let trace = build_trace(&catalog, 11);
    let manager = Desiccant::new(DesiccantConfig::default());
    let mut p = Platform::new(
        pressure_config(),
        catalog,
        GcMode::Vanilla,
        Some(Box::new(manager)),
    );
    let out = replay(&mut p, &trace, &fast_replay(20.0));
    // §5.3: reclamation introduces at most ~6 % CPU overhead.
    assert!(
        out.reclaim_cpu_fraction < 0.10,
        "reclamation CPU share too high: {:.3}",
        out.reclaim_cpu_fraction
    );
}

#[test]
fn frozen_instances_shrink_after_reclaim() {
    let catalog = workloads::catalog();
    let manager = Desiccant::new(DesiccantConfig {
        low_threshold: 0.01,
        dynamic_threshold: false,
        // Long enough that no reclamation happens between the
        // submissions below; the sweeper only acts after t = 13 s.
        freeze_timeout: SimDuration::from_secs(5),
        ..DesiccantConfig::default()
    });
    let mut p = Platform::new(
        pressure_config(),
        catalog,
        GcMode::Vanilla,
        Some(Box::new(manager)),
    );
    let fft = p.function_index("fft").unwrap();
    // A few invocations to build frozen garbage, then idle time for the
    // sweeper.
    for i in 0..5u64 {
        p.submit(SimTime(i * 2_000_000_000), fft);
    }
    p.run_until(SimTime(12_000_000_000));
    let before: u64 = p.instance_uss().iter().map(|(_, u)| u).sum();
    p.run_until(SimTime(30_000_000_000));
    let after: u64 = p.instance_uss().iter().map(|(_, u)| u).sum();
    assert!(p.stats().reclamations >= 1);
    assert!(
        after < before,
        "reclamation did not shrink the instance: {before} -> {after}"
    );
}

/// Graceful degradation: when *every* reclamation fails, Desiccant
/// marks the instances as failed and stops re-selecting them, and the
/// platform's LRU eviction fallback keeps the cache inside its budget.
/// No request is lost and teardown accounting still balances.
#[test]
fn failed_reclaims_fall_back_to_lru_eviction() {
    let cache_budget = 256 << 20;
    let config = PlatformConfig {
        cache_budget,
        cores: 3.0,
        sweep_interval: SimDuration::from_millis(50),
        faults: Some(FaultPlan {
            seed: 13,
            boot_fail: 0.0,
            crash: 0.0,
            thaw_fail: 0.0,
            reclaim_fail: 1.0,
            oom_kill: 0.0,
        }),
        ..PlatformConfig::default()
    };
    let manager = Desiccant::new(DesiccantConfig {
        low_threshold: 0.05,
        dynamic_threshold: false,
        freeze_timeout: SimDuration::from_millis(200),
        ..DesiccantConfig::default()
    });
    let mut p = Platform::new(
        config,
        workloads::catalog(),
        GcMode::Vanilla,
        Some(Box::new(manager)),
    );
    // Rotate functions so the tight cache constantly churns.
    let names = ["file-hash", "sort", "fft", "matrix", "factor", "pi"];
    let mut t = SimTime::ZERO;
    let mut submitted = 0u64;
    for _ in 0..20u64 {
        for (i, name) in names.iter().enumerate() {
            let idx = p.function_index(name).expect("catalog");
            p.submit(t + SimDuration::from_millis(i as u64 * 60), idx);
            submitted += 1;
        }
        t += SimDuration::from_millis(500);
    }
    p.run_until(t + SimDuration::from_secs(300));
    let (total, completed, failed) = p.request_totals();
    assert_eq!(total, submitted);
    assert_eq!((completed, failed), (submitted, 0), "degraded mode lost requests");
    let s = p.stats();
    assert!(s.reclaim_failures > 0, "no reclamation was ever attempted");
    assert_eq!(s.reclamations, 0, "a 100% failure rate must complete no reclamation");
    assert!(s.evictions > 0, "LRU fallback never engaged under pressure");
    // Freeze-time recharges may overcommit the budget by the
    // instances' post-boot growth until the next admission evicts;
    // anything beyond that bound would be an accounting leak.
    let slack = p.instance_count() as u64 * (32 << 20);
    assert!(
        p.cache_used() <= cache_budget + slack,
        "cache accounting drifted: {} vs budget {}",
        p.cache_used(),
        cache_budget
    );
    p.shutdown().expect("failed reclaims must not corrupt teardown");
}
