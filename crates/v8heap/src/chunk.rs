//! 256 KiB memory chunks, the unit of every V8 space.
//!
//! Each chunk's first 4 KiB page holds self-describing metadata and can
//! never be released while the chunk exists; releasing the rest of a
//! chunk still returns 98.4 % of it (§4.4). Old-space chunks carry a
//! free list of byte runs rebuilt by each sweep.

use simos::cast;
use simos::{VirtAddr, PAGE_SIZE};

/// Size of a V8 memory chunk.
pub const CHUNK_SIZE: u64 = 256 << 10;

/// Size of the unreleasable metadata header at the start of a chunk.
pub const CHUNK_HEADER: u64 = PAGE_SIZE;

/// Usable payload bytes per chunk.
pub const CHUNK_PAYLOAD: u64 = CHUNK_SIZE - CHUNK_HEADER;

/// Identifies a chunk in the heap's chunk arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub u32);

impl ChunkId {
    /// The chunk-arena index this id names.
    pub fn index(self) -> usize {
        cast::to_usize(self.0)
    }
}

/// Which space a chunk belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkSpace {
    /// A young-generation semispace chunk.
    Young,
    /// An old-space chunk.
    Old,
    /// A large-object chunk (holds exactly one object; may be larger
    /// than [`CHUNK_SIZE`]).
    Large,
}

/// One mapped chunk.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Mapping base address (the header page).
    pub addr: VirtAddr,
    /// Total mapped size (always [`CHUNK_SIZE`] except for large-object
    /// chunks).
    pub size: u64,
    /// Owning space.
    pub space: ChunkSpace,
    /// Free byte runs `(offset, len)` within the payload, sorted by
    /// offset. Offsets are relative to the chunk base and never overlap
    /// the header.
    pub free_runs: Vec<(u32, u32)>,
}

impl Chunk {
    /// Creates a chunk whose whole payload is one free run.
    pub fn new(addr: VirtAddr, size: u64, space: ChunkSpace) -> Chunk {
        Chunk {
            addr,
            size,
            space,
            free_runs: vec![(cast::to_u32(CHUNK_HEADER), cast::to_u32(size - CHUNK_HEADER))],
        }
    }

    /// Payload capacity in bytes.
    pub fn payload(&self) -> u64 {
        self.size - CHUNK_HEADER
    }

    /// Total free bytes in the chunk.
    pub fn free_bytes(&self) -> u64 {
        self.free_runs.iter().map(|(_, l)| u64::from(*l)).sum()
    }

    /// True if nothing is allocated in the chunk.
    pub fn is_fully_free(&self) -> bool {
        self.free_bytes() == self.payload()
    }

    /// First-fit allocation of `len` bytes; returns the absolute
    /// address, or `None` if no run is large enough.
    pub fn alloc(&mut self, len: u32) -> Option<VirtAddr> {
        for i in 0..self.free_runs.len() {
            let (off, run) = self.free_runs[i]; // tidy:allow(panic-reachability) -- the run index comes from the scan loop over free_runs itself
            if run >= len {
                if run == len {
                    self.free_runs.remove(i);
                } else {
                    self.free_runs[i] = (off + len, run - len); // tidy:allow(panic-reachability) -- the run index comes from the scan loop over free_runs itself
                }
                return Some(self.addr.offset(u64::from(off)));
            }
        }
        None
    }

    /// Rebuilds the free list from the sorted live ranges
    /// `(offset, len)` inside this chunk (what a sweep does).
    pub fn rebuild_free_runs(&mut self, mut live: Vec<(u32, u32)>) {
        live.sort_unstable();
        let mut runs = Vec::new();
        let mut cursor = cast::to_u32(CHUNK_HEADER);
        for (off, len) in live {
            debug_assert!(off >= cursor, "overlapping live ranges");
            if off > cursor {
                runs.push((cursor, off - cursor));
            }
            cursor = off + len;
        }
        let end = cast::to_u32(self.size);
        if end > cursor {
            runs.push((cursor, end - cursor));
        }
        self.free_runs = runs;
    }

    /// The page-aligned sub-ranges of the payload that contain no live
    /// data — the pages Desiccant may release. Pages straddling a live
    /// object are kept (this is the fragmentation the paper's ideal
    /// baseline doesn't pay).
    pub fn releasable_pages(&self) -> Vec<(VirtAddr, u64)> {
        let mut out = Vec::new();
        for &(off, len) in &self.free_runs {
            let start = (self.addr.0 + u64::from(off)).div_ceil(PAGE_SIZE) * PAGE_SIZE;
            let end = (self.addr.0 + u64::from(off) + u64::from(len)) / PAGE_SIZE * PAGE_SIZE;
            if end > start {
                out.push((VirtAddr(start), end - start));
            }
        }
        out
    }
}

mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for ChunkId {
        fn snap(&self, w: &mut Writer) {
            let Self(raw) = self;
            raw.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<ChunkId, SnapError> {
            Ok(ChunkId(u32::restore(r)?))
        }
    }

    impl Snapshot for ChunkSpace {
        fn snap(&self, w: &mut Writer) {
            let tag: u8 = match self {
                ChunkSpace::Young => 0,
                ChunkSpace::Old => 1,
                ChunkSpace::Large => 2,
            };
            tag.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<ChunkSpace, SnapError> {
            match u8::restore(r)? {
                0 => Ok(ChunkSpace::Young),
                1 => Ok(ChunkSpace::Old),
                2 => Ok(ChunkSpace::Large),
                _ => Err(SnapError::Corrupt("unknown ChunkSpace tag")),
            }
        }
    }

    impl Snapshot for Chunk {
        fn snap(&self, w: &mut Writer) {
            let Self {
                addr,
                size,
                space,
                free_runs,
            } = self;
            addr.snap(w);
            size.snap(w);
            space.snap(w);
            free_runs.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<Chunk, SnapError> {
            let addr = VirtAddr::restore(r)?;
            let size = u64::restore(r)?;
            let space = ChunkSpace::restore(r)?;
            let free_runs: Vec<(u32, u32)> = Vec::restore(r)?;
            let mut prev_end = 0u32;
            for &(off, len) in &free_runs {
                if u64::from(off) < CHUNK_HEADER || off < prev_end {
                    return Err(SnapError::Corrupt("Chunk free runs out of order"));
                }
                let end = off
                    .checked_add(len)
                    .ok_or(SnapError::Corrupt("Chunk free run overflows"))?;
                if u64::from(end) > size {
                    return Err(SnapError::Corrupt("Chunk free run past end"));
                }
                prev_end = end;
            }
            Ok(Chunk {
                addr,
                size,
                space,
                free_runs,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk() -> Chunk {
        Chunk::new(VirtAddr(0x4000_0000), CHUNK_SIZE, ChunkSpace::Old)
    }

    #[test]
    fn fresh_chunk_is_fully_free() {
        let c = chunk();
        assert!(c.is_fully_free());
        assert_eq!(c.free_bytes(), CHUNK_PAYLOAD);
    }

    #[test]
    fn alloc_consumes_runs_first_fit() {
        let mut c = chunk();
        let a = c.alloc(1000).unwrap();
        assert_eq!(a.0, c.addr.0 + CHUNK_HEADER);
        let b = c.alloc(1000).unwrap();
        assert_eq!(b.0, a.0 + 1000);
        assert_eq!(c.free_bytes(), CHUNK_PAYLOAD - 2000);
    }

    #[test]
    fn alloc_fails_when_fragmented() {
        let mut c = chunk();
        // Leave two runs smaller than the request.
        c.free_runs = vec![(4096, 100), (8192, 100)];
        assert!(c.alloc(200).is_none());
        assert!(c.alloc(100).is_some());
    }

    #[test]
    fn rebuild_from_live_ranges() {
        let mut c = chunk();
        c.rebuild_free_runs(vec![(8192, 4096), (4096, 100)]);
        // Free: [4196, 8192) and [12288, CHUNK_SIZE).
        assert_eq!(c.free_runs.len(), 2);
        assert_eq!(c.free_runs[0], (4196, 8192 - 4196));
        assert_eq!(c.free_runs[1], (12288, (CHUNK_SIZE - 12288) as u32));
    }

    #[test]
    fn rebuild_with_no_live_frees_payload() {
        let mut c = chunk();
        c.alloc(1234).unwrap();
        c.rebuild_free_runs(Vec::new());
        assert!(c.is_fully_free());
    }

    #[test]
    fn releasable_pages_exclude_header_and_straddles() {
        let mut c = chunk();
        // One live object at offset 6000..6100: page 1 (4096..8192)
        // straddles it and is not releasable.
        c.rebuild_free_runs(vec![(6000, 100)]);
        let pages = c.releasable_pages();
        let total: u64 = pages.iter().map(|(_, l)| *l).sum();
        // All pages except the header page and the straddled page.
        assert_eq!(total, CHUNK_SIZE - 2 * PAGE_SIZE);
        for (addr, _) in &pages {
            assert!(addr.0 >= c.addr.0 + CHUNK_HEADER);
        }
    }

    #[test]
    fn fully_free_chunk_releases_everything_but_header() {
        let c = chunk();
        let total: u64 = c.releasable_pages().iter().map(|(_, l)| *l).sum();
        assert_eq!(total, CHUNK_SIZE - CHUNK_HEADER);
        // 98.4 % of the chunk, as the paper notes.
        assert!((total as f64 / CHUNK_SIZE as f64) > 0.98);
    }
}
