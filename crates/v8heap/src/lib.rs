//! # v8heap — a model of the V8 JavaScript heap
//!
//! Node.js functions on Lambda run on V8, whose heap differs from
//! HotSpot's in exactly the ways the paper's §3.2.2 characterization
//! depends on:
//!
//! * all spaces are made of **discontinuous 256 KiB chunks**, each with
//!   a self-describing **4 KiB header page that can never be released**
//!   (unmapping the rest still frees 98.4 % of a chunk);
//! * the young generation has **no eden**: allocation happens in the
//!   *from* semispace, and the scavenger copies survivors to *to*;
//! * the resize policy is **asymmetric**: expansion is decided *before*
//!   a GC (the young generation doubles once the live bytes accumulated
//!   since the last expansion exceed its size), while shrinking happens
//!   *after* a GC and only when the allocation rate is low — so a
//!   bursty FaaS function's young generation ratchets up to its cap
//!   (32 MiB for a 256 MiB budget, 128 MiB at 1 GiB) and never shrinks
//!   before the instance freezes;
//! * the old space is **mark-sweep with free lists**: dead objects
//!   leave fragmented free runs inside chunks, fully-free chunks are
//!   unmapped after GC (V8 is more aggressive than HotSpot about
//!   returning memory), and partially-free pages are what separates
//!   Desiccant from the ideal baseline for JavaScript (≈6.4 %, §5.2);
//! * `global.gc()` is **aggressive**: it drops weakly referenced code,
//!   deoptimizing JIT state and slowing later invocations — Desiccant's
//!   `reclaim` takes a flag to keep weak targets alive (§4.7, a 7 LoC
//!   patch in the real V8).
//!
//! # Examples
//!
//! ```
//! use gc_core::ObjectKind;
//! use simos::System;
//! use v8heap::{V8Config, V8Heap};
//!
//! let mut sys = System::new();
//! let pid = sys.spawn_process();
//! let mut heap = V8Heap::new(&mut sys, pid, V8Config::for_budget(256 << 20)).unwrap();
//!
//! let scope = heap.graph_mut().push_handle_scope();
//! let obj = heap.alloc(&mut sys, 64 << 10, ObjectKind::Data).unwrap();
//! heap.graph_mut().add_handle(obj);
//! heap.graph_mut().pop_handle_scope(scope);
//!
//! let before = sys.uss(pid);
//! let outcome = heap.reclaim(&mut sys, true).unwrap();
//! assert!(outcome.released_bytes > 0);
//! assert!(sys.uss(pid) < before);
//! ```

#![forbid(unsafe_code)]

pub mod chunk;
pub mod config;
pub mod heap;

pub use chunk::{Chunk, ChunkId, CHUNK_HEADER, CHUNK_SIZE};
pub use config::V8Config;
pub use heap::{V8Heap, V8HeapError, V8ReclaimOutcome};
