//! The V8 heap: allocation, scavenging, mark-sweep, resize, reclaim.

use std::collections::BTreeMap;

use gc_core::object::{HeapGraph, ObjectId, ObjectKind};
use gc_core::stats::{GcCostModel, GcCounters, GcKind};
use gc_core::trace::{mark, mark_with_extra_roots};
use simos::cast;
use simos::cost::CostModel;
use simos::mem::{page_align_up, MappingKind, Prot};
use simos::{Pid, SimDuration, SimTime, System, VirtAddr};

use crate::chunk::{Chunk, ChunkId, ChunkSpace, CHUNK_HEADER, CHUNK_SIZE};
use crate::config::V8Config;

/// Space tags stored in [`gc_core::object::Object::space_tag`].
pub mod tag {
    /// Object lives in the young generation (the *from* semispace).
    pub const YOUNG: u8 = 0;
    /// Object lives in the old space.
    pub const OLD: u8 = 2;
    /// Object lives in a large-object chunk.
    pub const LARGE: u8 = 3;
}

/// V8 heap failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum V8HeapError {
    /// The heap limit would be exceeded ("JavaScript heap out of
    /// memory").
    OutOfMemory { requested: u64 },
    /// An OS-level operation failed (indicates a model bug).
    Os(simos::SimOsError),
}

impl std::fmt::Display for V8HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            V8HeapError::OutOfMemory { requested } => {
                write!(f, "JavaScript heap out of memory (requested {requested})")
            }
            V8HeapError::Os(e) => write!(f, "os error: {e}"),
        }
    }
}

impl std::error::Error for V8HeapError {}

impl From<simos::SimOsError> for V8HeapError {
    fn from(e: simos::SimOsError) -> V8HeapError {
        V8HeapError::Os(e)
    }
}

/// Result of a [`V8Heap::reclaim`] call.
#[derive(Debug, Clone, Copy)]
pub struct V8ReclaimOutcome {
    /// Bytes of physical memory returned to the OS.
    pub released_bytes: u64,
    /// Live bytes measured by the collection.
    pub live_bytes: u64,
    /// Simulated wall time of the reclamation.
    pub wall_time: SimDuration,
}

/// A V8 heap bound to one simulated process.
#[derive(Debug, Clone)]
pub struct V8Heap {
    pid: Pid,
    config: V8Config,
    graph: HeapGraph,
    chunks: Vec<Option<Chunk>>,
    addr_to_chunk: BTreeMap<u64, ChunkId>,
    /// The *from* semispace: allocation and survivor space.
    from: Vec<ChunkId>,
    /// The *to* semispace: scavenge destination.
    to: Vec<ChunkId>,
    /// Index of the from-chunk currently served by the bump allocator.
    from_cursor: usize,
    /// Bump offset within that chunk (starts at the header size).
    from_offset: u64,
    /// Target semispace size in chunks (the resize policy's knob).
    semispace_chunks: usize,
    /// Live bytes found by GCs since the last young expansion.
    accumulated_survived: u64,
    old: Vec<ChunkId>,
    large: Vec<ChunkId>,
    counters: GcCounters,
    gc_cost: GcCostModel,
    os_cost: CostModel,
    pending: SimDuration,
    last_live_bytes: u64,
    /// Current mutator time, advanced by the embedder.
    now: SimTime,
    /// Allocation-rate bookkeeping.
    rate_mark: SimTime,
    allocated_since_mark: u64,
    /// Code bytes cleared by aggressive collections and not yet
    /// re-compiled; the runtime turns this into a deopt slowdown.
    deopt_code_bytes: u64,
    /// Committed-size threshold that triggers the next major GC (the
    /// heap-growing-factor schedule).
    next_major_threshold: u64,
}

/// Initial major-GC trigger and post-GC growing factor, mirroring V8's
/// allocation-limit schedule.
const MAJOR_GC_INITIAL_THRESHOLD: u64 = 24 << 20;
const MAJOR_GC_GROWTH_FACTOR: f64 = 1.5;

impl V8Heap {
    /// Creates a heap in process `pid` with the initial young
    /// generation mapped.
    pub fn new(sys: &mut System, pid: Pid, config: V8Config) -> Result<V8Heap, V8HeapError> {
        config.validate();
        let mut heap = V8Heap {
            pid,
            config,
            graph: HeapGraph::new(),
            chunks: Vec::new(),
            addr_to_chunk: BTreeMap::new(),
            from: Vec::new(),
            to: Vec::new(),
            from_cursor: 0,
            from_offset: CHUNK_HEADER,
            semispace_chunks: cast::to_usize(config.young_initial / 2 / CHUNK_SIZE),
            accumulated_survived: 0,
            old: Vec::new(),
            large: Vec::new(),
            counters: GcCounters::default(),
            gc_cost: GcCostModel::default(),
            os_cost: CostModel::default(),
            pending: SimDuration::ZERO,
            last_live_bytes: 0,
            now: SimTime::ZERO,
            rate_mark: SimTime::ZERO,
            allocated_since_mark: 0,
            deopt_code_bytes: 0,
            next_major_threshold: MAJOR_GC_INITIAL_THRESHOLD,
        };
        // Map the first from-space chunk eagerly.
        let c = heap.map_chunk(sys, CHUNK_SIZE, ChunkSpace::Young)?;
        heap.from.push(c);
        Ok(heap)
    }

    /// The process this heap belongs to.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The object graph.
    pub fn graph(&self) -> &HeapGraph {
        &self.graph
    }

    /// Mutable object graph.
    pub fn graph_mut(&mut self) -> &mut HeapGraph {
        &mut self.graph
    }

    /// Cumulative GC statistics.
    pub fn counters(&self) -> &GcCounters {
        &self.counters
    }

    /// Advances the heap's notion of mutator time (drives the
    /// allocation-rate estimate of the shrink policy).
    pub fn set_now(&mut self, now: SimTime) {
        if now > self.now {
            self.now = now;
        }
    }

    /// Young-generation size (both semispaces), the quantity the §3.2.2
    /// doubling policy controls.
    pub fn young_size(&self) -> u64 {
        2 * cast::to_u64(self.semispace_chunks) * CHUNK_SIZE
    }

    /// Total mapped heap bytes (all chunks).
    pub fn committed(&self) -> u64 {
        self.chunks
            .iter()
            .flatten()
            .map(|c| c.size)
            .sum()
    }

    /// Live bytes found by the most recent collection.
    pub fn last_live_bytes(&self) -> u64 {
        self.last_live_bytes
    }

    /// Drains accrued latency (faults + GC pauses).
    pub fn take_elapsed(&mut self) -> SimDuration {
        std::mem::take(&mut self.pending)
    }

    /// Drains the code bytes cleared by aggressive collections; the
    /// embedder converts them into a re-JIT slowdown.
    pub fn take_deopt_code_bytes(&mut self) -> u64 {
        std::mem::take(&mut self.deopt_code_bytes)
    }

    /// Resident bytes across all heap chunks (V8's own accounting; the
    /// platform reads it directly, §4.5.2).
    pub fn resident_heap_bytes(&self, sys: &System) -> u64 {
        self.chunks
            .iter()
            .flatten()
            .map(|c| sys.pmap(self.pid, c.addr, c.size).unwrap_or(0))
            .sum()
    }

    fn chunk(&self, id: ChunkId) -> &Chunk {
        self.chunks[id.index()].as_ref().expect("stale chunk id") // tidy:allow(panic-reachability) -- chunk ids are allocated by this heap; the from/to/old lists hold only live ids
    }

    fn chunk_mut(&mut self, id: ChunkId) -> &mut Chunk {
        self.chunks[id.index()].as_mut().expect("stale chunk id") // tidy:allow(panic-reachability) -- chunk ids are allocated by this heap; the from/to/old lists hold only live ids
    }

    fn map_chunk(
        &mut self,
        sys: &mut System,
        size: u64,
        space: ChunkSpace,
    ) -> Result<ChunkId, V8HeapError> {
        self.map_chunk_inner(sys, size, space, false)
    }

    /// Chunk mapping for collector-internal use: a collection in
    /// progress must not fail half-way, so it may briefly overshoot the
    /// heap limit (the limit is enforced on the mutator path).
    fn map_chunk_emergency(
        &mut self,
        sys: &mut System,
        size: u64,
        space: ChunkSpace,
    ) -> Result<ChunkId, V8HeapError> {
        self.map_chunk_inner(sys, size, space, true)
    }

    fn map_chunk_inner(
        &mut self,
        sys: &mut System,
        size: u64,
        space: ChunkSpace,
        emergency: bool,
    ) -> Result<ChunkId, V8HeapError> {
        if !emergency && self.committed() + size > self.config.max_heap {
            return Err(V8HeapError::OutOfMemory { requested: size });
        }
        let name = match space {
            ChunkSpace::Young => "[v8:young]",
            ChunkSpace::Old => "[v8:old]",
            ChunkSpace::Large => "[v8:large]",
        };
        let addr = sys.mmap_named(self.pid, size, MappingKind::Anonymous, Prot::ReadWrite, name)?;
        // The header page is written immediately (chunk metadata).
        let out = sys.touch(self.pid, addr, CHUNK_HEADER, true)?;
        self.pending += self.os_cost.touch_cost(out);
        let chunk = Chunk::new(addr, size, space);
        let id = ChunkId(cast::to_u32(self.chunks.len()));
        self.chunks.push(Some(chunk));
        self.addr_to_chunk.insert(addr.0, id);
        Ok(id)
    }

    fn unmap_chunk(&mut self, sys: &mut System, id: ChunkId) -> Result<(), V8HeapError> {
        let chunk = self.chunks[id.index()] // tidy:allow(panic-reachability) -- chunk ids are allocated by this heap; the from/to/old lists hold only live ids
            .take()
            .expect("double unmap of chunk"); // tidy:allow(panic-reachability) -- chunk ids are allocated by this heap; the from/to/old lists hold only live ids
        self.addr_to_chunk.remove(&chunk.addr.0);
        sys.munmap(self.pid, chunk.addr)?;
        Ok(())
    }

    /// The chunk containing `addr`.
    fn chunk_of_addr(&self, addr: u64) -> ChunkId {
        let (_, id) = self
            .addr_to_chunk
            .range(..=addr)
            .next_back()
            .expect("address not in any chunk"); // tidy:allow(panic-reachability) -- chunk ids are allocated by this heap; the from/to/old lists hold only live ids
        debug_assert!(addr < self.chunk(*id).addr.0 + self.chunk(*id).size);
        *id
    }

    fn charge_touch(&mut self, sys: &mut System, addr: VirtAddr, len: u64) -> Result<(), V8HeapError> {
        if len == 0 {
            return Ok(());
        }
        let start = VirtAddr(addr.0 / simos::PAGE_SIZE * simos::PAGE_SIZE);
        let end = page_align_up(addr.0 + len);
        let out = sys.touch(self.pid, start, end - start.0, true)?;
        self.pending += self.os_cost.touch_cost(out);
        Ok(())
    }

    /// Allocates an object in the young generation (or the large-object
    /// space). May trigger a scavenge or a major GC.
    pub fn alloc(
        &mut self,
        sys: &mut System,
        size: u32,
        kind: ObjectKind,
    ) -> Result<ObjectId, V8HeapError> {
        self.allocated_since_mark += u64::from(size);
        if size >= self.config.large_object_threshold {
            return self.alloc_large(sys, size, kind);
        }
        let asize = u64::from(size).div_ceil(8) * 8;
        for attempt in 0..3 {
            // A young bump may hit the heap limit while growing the
            // semispace; treat that like a full semispace and collect.
            match self.try_young_bump(sys, asize) {
                Ok(Some(addr)) => {
                    self.charge_touch(sys, addr, asize)?;
                    let id = self.graph.alloc(size, kind);
                    self.graph.set_addr(id, addr.0);
                    self.graph.get_mut(id).space_tag = tag::YOUNG;
                    return Ok(id);
                }
                Ok(None) | Err(V8HeapError::OutOfMemory { .. }) => {}
                Err(e) => return Err(e),
            }
            if attempt == 0 {
                self.scavenge(sys)?;
            } else {
                self.major_gc(sys, true)?;
            }
        }
        // The young generation cannot host it even when empty (tiny
        // semispace); put it in old space, as V8's pretenuring would.
        let addr = self.old_alloc(sys, cast::to_u32(asize), true)?;
        let id = self.graph.alloc(size, kind);
        self.graph.set_addr(id, addr.0);
        self.graph.get_mut(id).space_tag = tag::OLD;
        Ok(id)
    }

    /// Bump allocation in the from semispace; maps chunks lazily up to
    /// the semispace target.
    fn try_young_bump(
        &mut self,
        sys: &mut System,
        asize: u64,
    ) -> Result<Option<VirtAddr>, V8HeapError> {
        loop {
            if self.from_cursor >= self.from.len() {
                if self.from.len() >= self.semispace_chunks {
                    return Ok(None);
                }
                let c = self.map_chunk(sys, CHUNK_SIZE, ChunkSpace::Young)?;
                self.from.push(c);
            }
            let chunk_addr = self.chunk(self.from[self.from_cursor]).addr; // tidy:allow(panic-reachability) -- chunk ids are allocated by this heap; the from/to/old lists hold only live ids
            if self.from_offset + asize <= CHUNK_SIZE {
                let addr = chunk_addr.offset(self.from_offset);
                self.from_offset += asize;
                return Ok(Some(addr));
            }
            if self.from_cursor + 1 >= self.semispace_chunks {
                return Ok(None);
            }
            self.from_cursor += 1;
            self.from_offset = CHUNK_HEADER;
        }
    }

    fn alloc_large(
        &mut self,
        sys: &mut System,
        size: u32,
        kind: ObjectKind,
    ) -> Result<ObjectId, V8HeapError> {
        let mapped = page_align_up(CHUNK_HEADER + u64::from(size));
        let cid = match self.map_chunk(sys, mapped, ChunkSpace::Large) {
            Ok(c) => c,
            Err(V8HeapError::OutOfMemory { .. }) => {
                self.major_gc(sys, true)?;
                self.map_chunk(sys, mapped, ChunkSpace::Large)?
            }
            Err(e) => return Err(e),
        };
        self.large.push(cid);
        let addr = self.chunk(cid).addr.offset(CHUNK_HEADER);
        self.charge_touch(sys, addr, u64::from(size))?;
        let id = self.graph.alloc(size, kind);
        self.graph.set_addr(id, addr.0);
        self.graph.get_mut(id).space_tag = tag::LARGE;
        Ok(id)
    }

    /// First-fit allocation in the old space, mapping a new chunk when
    /// no free run fits (that *is* old-space expansion in V8).
    ///
    /// `allow_gc` is false when called from inside a collection
    /// (evacuation); hitting the heap limit there is a genuine OOM
    /// rather than a cue to re-enter the collector.
    fn old_alloc(&mut self, sys: &mut System, asize: u32, allow_gc: bool) -> Result<VirtAddr, V8HeapError> {
        for i in 0..self.old.len() {
            let id = self.old[i]; // tidy:allow(panic-reachability) -- chunk ids are allocated by this heap; the from/to/old lists hold only live ids
            if let Some(addr) = self.chunk_mut(id).alloc(asize) {
                return Ok(addr);
            }
        }
        let first_try = if allow_gc {
            self.map_chunk(sys, CHUNK_SIZE, ChunkSpace::Old)
        } else {
            // Inside a collection: must not fail half-way, may briefly
            // overshoot the limit.
            self.map_chunk_emergency(sys, CHUNK_SIZE, ChunkSpace::Old)
        };
        let cid = match first_try {
            Ok(c) => c,
            Err(V8HeapError::OutOfMemory { .. }) if allow_gc => {
                self.major_gc(sys, true)?;
                // Retry the free lists after the GC before growing.
                for i in 0..self.old.len() {
                    let id = self.old[i]; // tidy:allow(panic-reachability) -- chunk ids are allocated by this heap; the from/to/old lists hold only live ids
                    if let Some(addr) = self.chunk_mut(id).alloc(asize) {
                        return Ok(addr);
                    }
                }
                self.map_chunk(sys, CHUNK_SIZE, ChunkSpace::Old)?
            }
            Err(e) => return Err(e),
        };
        self.old.push(cid);
        let addr = self
            .chunk_mut(cid)
            .alloc(asize)
            .expect("fresh chunk must fit a small object"); // tidy:allow(panic-reachability) -- a fresh chunk is empty and small objects fit by the size-class bound
        Ok(addr)
    }

    /// Ids of all non-young objects, used as conservative scavenge
    /// roots.
    fn non_young_roots(&self) -> Vec<ObjectId> {
        self.graph
            .iter()
            .filter(|(_, o)| o.space_tag != tag::YOUNG)
            .map(|(id, _)| id)
            .collect()
    }

    /// Runs a scavenge (young GC): expansion check *before* the GC,
    /// copy survivors from *from* to *to*, promote second-time
    /// survivors, swap semispaces, then the shrink check *after* the
    /// GC.
    pub fn scavenge(&mut self, sys: &mut System) -> Result<(), V8HeapError> {
        // Expansion check (before GC): double the young generation if
        // the live bytes accumulated since the last expansion exceed
        // its current size.
        let max_semispace_chunks = cast::to_usize(self.config.young_max / 2 / CHUNK_SIZE);
        if self.accumulated_survived > self.young_size() && self.semispace_chunks < max_semispace_chunks
        {
            self.semispace_chunks = (self.semispace_chunks * 2).min(max_semispace_chunks);
            self.accumulated_survived = 0;
        }

        let roots = self.non_young_roots();
        let live = mark_with_extra_roots(&self.graph, true, true, roots.into_iter());
        self.last_live_bytes = live.live_bytes;

        let survivors: Vec<(ObjectId, u32, u8)> = self
            .graph
            .iter()
            .filter(|(id, o)| o.space_tag == tag::YOUNG && live.is_live(*id))
            .map(|(id, o)| (id, o.size, o.age))
            .collect();

        let mut to_cursor = 0usize;
        let mut to_offset = CHUNK_HEADER;
        let mut copied = 0u64;
        let mut promoted = 0u64;
        let young_live_objects = cast::to_u64(survivors.len());
        for (id, size, age) in survivors {
            let asize = u64::from(size).div_ceil(8) * 8;
            // V8 promotes objects surviving their second scavenge.
            let tenured = age + 1 >= 2;
            let mut dest = None;
            if !tenured {
                loop {
                    if to_cursor >= self.to.len() {
                        if self.to.len() >= self.semispace_chunks {
                            break;
                        }
                        let c = self.map_chunk_emergency(sys, CHUNK_SIZE, ChunkSpace::Young)?;
                        self.to.push(c);
                    }
                    if to_offset + asize <= CHUNK_SIZE {
                        let addr = self.chunk(self.to[to_cursor]).addr.offset(to_offset); // tidy:allow(panic-reachability) -- chunk ids are allocated by this heap; the from/to/old lists hold only live ids
                        to_offset += asize;
                        dest = Some(addr);
                        break;
                    }
                    if to_cursor + 1 >= self.semispace_chunks {
                        break;
                    }
                    to_cursor += 1;
                    to_offset = CHUNK_HEADER;
                }
            }
            match dest {
                Some(addr) => {
                    self.charge_touch(sys, addr, asize)?;
                    copied += asize;
                    let obj = self.graph.get_mut(id);
                    obj.addr = addr.0;
                    obj.age = age + 1;
                }
                None => {
                    let addr = self.old_alloc(sys, cast::to_u32(asize), false)?;
                    self.charge_touch(sys, addr, asize)?;
                    promoted += asize;
                    let obj = self.graph.get_mut(id);
                    obj.addr = addr.0;
                    obj.space_tag = tag::OLD;
                }
            }
        }

        // Dead young objects go away; non-young objects were roots and
        // are all marked.
        let freed = self.graph.sweep(&live.marks);

        // Swap semispaces: *to* (with survivors) becomes *from*.
        std::mem::swap(&mut self.from, &mut self.to);
        self.from_cursor = to_cursor.min(self.from.len().saturating_sub(1));
        self.from_offset = if self.from.is_empty() {
            CHUNK_HEADER
        } else {
            to_offset
        };
        if self.from.is_empty() {
            let c = self.map_chunk_emergency(sys, CHUNK_SIZE, ChunkSpace::Young)?;
            self.from.push(c);
            self.from_cursor = 0;
        }

        self.accumulated_survived += copied + promoted;

        let pause = self.gc_cost.pause(young_live_objects, copied + promoted);
        self.pending += pause;
        self.counters
            .record(GcKind::Young, copied, promoted, freed, pause);

        self.maybe_shrink_young(sys, copied)?;

        // V8's allocation-limit schedule: once the heap has grown past
        // the limit set after the previous major GC, run a major GC.
        // Without this, promoted-then-dead objects accumulate in the
        // old space unboundedly.
        if self.committed() > self.next_major_threshold {
            self.major_gc(sys, true)?;
        }
        Ok(())
    }

    /// Allocation rate since the last rate mark, or `None` if the
    /// window is too short to judge.
    fn allocation_rate(&self) -> Option<f64> {
        let window = self.now.saturating_since(self.rate_mark);
        if window < self.config.min_rate_window {
            return None;
        }
        Some(self.allocated_since_mark as f64 / window.as_secs_f64())
    }

    /// The shrink check run after GCs: if the allocation rate is below
    /// the threshold, the young generation shrinks to twice the live
    /// young bytes. High-allocation FaaS functions never take this
    /// path — that is the §3.2.2 pathology.
    fn maybe_shrink_young(&mut self, sys: &mut System, young_live: u64) -> Result<(), V8HeapError> {
        let Some(rate) = self.allocation_rate() else {
            return Ok(());
        };
        self.rate_mark = self.now;
        self.allocated_since_mark = 0;
        if rate >= self.config.shrink_alloc_rate {
            return Ok(());
        }
        let min_chunks = cast::to_usize(self.config.young_initial / 2 / CHUNK_SIZE);
        let target_bytes = 2 * young_live;
        let target = cast::to_usize(target_bytes.div_ceil(CHUNK_SIZE)).max(min_chunks);
        if target >= self.semispace_chunks {
            return Ok(());
        }
        self.semispace_chunks = target;
        // Unmap surplus semispace chunks beyond the new target, and
        // release the (now unused) pages of the remaining to-space —
        // V8 releases to-space memory when shrinking.
        while self.from.len() > self.semispace_chunks {
            let id = self.from.pop().expect("length checked"); // tidy:allow(panic-reachability) -- the loop condition checked the length
            self.unmap_chunk(sys, id)?;
        }
        while self.to.len() > self.semispace_chunks {
            let id = self.to.pop().expect("length checked"); // tidy:allow(panic-reachability) -- the loop condition checked the length
            self.unmap_chunk(sys, id)?;
        }
        let mut released = 0u64;
        for i in 0..self.to.len() {
            let id = self.to[i]; // tidy:allow(panic-reachability) -- chunk ids are allocated by this heap; the from/to/old lists hold only live ids
            for (addr, len) in self.chunk(id).releasable_pages() {
                released += sys.release(self.pid, addr, len)?;
            }
        }
        self.pending += self.os_cost.release_cost(released);
        self.from_cursor = self.from_cursor.min(self.from.len().saturating_sub(1));
        Ok(())
    }

    /// Runs a major (mark-sweep) collection.
    ///
    /// `keep_weak = false` models the aggressive `global.gc()`: weakly
    /// referenced code objects are collected and their bytes recorded
    /// for the deoptimization penalty. Desiccant's reclaim passes
    /// `keep_weak = true` (§4.7).
    pub fn major_gc(&mut self, sys: &mut System, keep_weak: bool) -> Result<(), V8HeapError> {
        let live = mark(&self.graph, true, keep_weak);
        self.last_live_bytes = live.live_bytes;
        if !keep_weak {
            self.deopt_code_bytes += live.weak_code_bytes;
        }

        // Evacuate live young objects into the old space.
        let survivors: Vec<(ObjectId, u32)> = self
            .graph
            .iter()
            .filter(|(id, o)| o.space_tag == tag::YOUNG && live.is_live(*id))
            .map(|(id, o)| (id, o.size))
            .collect();
        let mut evacuated = 0u64;
        for (id, size) in survivors {
            let asize = u64::from(size).div_ceil(8) * 8;
            let addr = self.old_alloc(sys, cast::to_u32(asize), false)?;
            self.charge_touch(sys, addr, asize)?;
            evacuated += asize;
            let obj = self.graph.get_mut(id);
            obj.addr = addr.0;
            obj.space_tag = tag::OLD;
        }

        let live_objects = live.live_objects;
        let freed = self.graph.sweep(&live.marks);

        // Rebuild old-space free lists from the surviving objects.
        let mut per_chunk: BTreeMap<ChunkId, Vec<(u32, u32)>> = BTreeMap::new();
        for id in &self.old {
            per_chunk.insert(*id, Vec::new());
        }
        for (_, obj) in self.graph.iter() {
            if obj.space_tag == tag::OLD {
                let cid = self.chunk_of_addr(obj.addr);
                let chunk_base = self.chunk(cid).addr.0;
                let asize = u64::from(obj.size).div_ceil(8) * 8;
                per_chunk
                    .get_mut(&cid)
                    .expect("old object in unknown chunk") // tidy:allow(panic-reachability) -- chunk ids are allocated by this heap; the from/to/old lists hold only live ids
                    .push((cast::to_u32(obj.addr - chunk_base), cast::to_u32(asize)));
            }
        }
        for (cid, livelist) in per_chunk {
            self.chunk_mut(cid).rebuild_free_runs(livelist);
        }

        // Dead large objects: unmap their chunks.
        let mut live_large: Vec<ChunkId> = Vec::new();
        for (_, obj) in self.graph.iter() {
            if obj.space_tag == tag::LARGE {
                live_large.push(self.chunk_of_addr(obj.addr));
            }
        }
        let stale: Vec<ChunkId> = self
            .large
            .iter()
            .copied()
            .filter(|c| !live_large.contains(c))
            .collect();
        self.large.retain(|c| live_large.contains(c));
        for cid in stale {
            self.unmap_chunk(sys, cid)?;
        }

        // Shrink after GC: fully-free old chunks return to the OS.
        let free_old: Vec<ChunkId> = self
            .old
            .iter()
            .copied()
            .filter(|c| self.chunk(*c).is_fully_free())
            .collect();
        self.old.retain(|c| !free_old.contains(c));
        for cid in free_old {
            self.unmap_chunk(sys, cid)?;
        }

        // Reset the young generation (it was evacuated). Keep the
        // mapped semispace chunks — their pages stay resident, which is
        // exactly the behaviour the paper characterizes.
        self.from_cursor = 0;
        self.from_offset = CHUNK_HEADER;
        if self.from.is_empty() {
            let c = self.map_chunk_emergency(sys, CHUNK_SIZE, ChunkSpace::Young)?;
            self.from.push(c);
        }

        let pause = self.gc_cost.full_pause(live_objects, evacuated);
        self.pending += pause;
        self.counters
            .record(GcKind::Full, evacuated, evacuated, freed, pause);

        // Reset the allocation-limit schedule relative to the post-GC
        // footprint.
        self.next_major_threshold = cast::u64_from_f64(self.committed() as f64 * MAJOR_GC_GROWTH_FACTOR)
            .max(MAJOR_GC_INITIAL_THRESHOLD);

        self.maybe_shrink_young(sys, 0)?;
        Ok(())
    }

    /// `global.gc()`: an aggressive full collection that clears weak
    /// references (and thereby JIT code), as stock V8 exposes it.
    pub fn global_gc(&mut self, sys: &mut System) -> Result<(), V8HeapError> {
        self.major_gc(sys, false)
    }

    /// The Desiccant `reclaim` interface: a major GC (weak-preserving
    /// by default, §4.7), then release every free page of every space —
    /// keeping each chunk's 4 KiB header, which cannot be released.
    pub fn reclaim(&mut self, sys: &mut System, keep_weak: bool) -> Result<V8ReclaimOutcome, V8HeapError> {
        let pending_before = self.pending;
        self.major_gc(sys, keep_weak)?;

        let mut released = 0u64;
        // Old space: release page-aligned free runs.
        let old_ids: Vec<ChunkId> = self.old.clone();
        for cid in old_ids {
            for (addr, len) in self.chunk(cid).releasable_pages() {
                released += sys.release(self.pid, addr, len)?;
            }
        }
        // Young semispaces are empty after the major GC: release all
        // payload pages of every young chunk.
        let young_ids: Vec<ChunkId> = self.from.iter().chain(self.to.iter()).copied().collect();
        for cid in young_ids {
            let chunk = self.chunk(cid);
            let (addr, len) = (chunk.addr.offset(CHUNK_HEADER), chunk.size - CHUNK_HEADER);
            released += sys.release(self.pid, addr, len)?;
        }
        self.pending += self.os_cost.release_cost(released);

        let wall = self.pending.saturating_sub(pending_before);
        Ok(V8ReclaimOutcome {
            released_bytes: released,
            live_bytes: self.last_live_bytes,
            wall_time: wall,
        })
    }
}

mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for V8Heap {
        fn snap(&self, w: &mut Writer) {
            let Self {
                pid,
                config,
                graph,
                chunks,
                addr_to_chunk,
                from,
                to,
                from_cursor,
                from_offset,
                semispace_chunks,
                accumulated_survived,
                old,
                large,
                counters,
                gc_cost,
                os_cost,
                pending,
                last_live_bytes,
                now,
                rate_mark,
                allocated_since_mark,
                deopt_code_bytes,
                next_major_threshold,
            } = self;
            pid.snap(w);
            config.snap(w);
            graph.snap(w);
            chunks.snap(w);
            addr_to_chunk.snap(w);
            from.snap(w);
            to.snap(w);
            from_cursor.snap(w);
            from_offset.snap(w);
            semispace_chunks.snap(w);
            accumulated_survived.snap(w);
            old.snap(w);
            large.snap(w);
            counters.snap(w);
            gc_cost.snap(w);
            os_cost.snap(w);
            pending.snap(w);
            last_live_bytes.snap(w);
            now.snap(w);
            rate_mark.snap(w);
            allocated_since_mark.snap(w);
            deopt_code_bytes.snap(w);
            next_major_threshold.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<V8Heap, SnapError> {
            let pid = Pid::restore(r)?;
            let config = V8Config::restore(r)?;
            let graph = HeapGraph::restore(r)?;
            let chunks: Vec<Option<Chunk>> = Vec::restore(r)?;
            let addr_to_chunk: BTreeMap<u64, ChunkId> = BTreeMap::restore(r)?;
            let from: Vec<ChunkId> = Vec::restore(r)?;
            let to: Vec<ChunkId> = Vec::restore(r)?;
            let from_cursor = usize::restore(r)?;
            let from_offset = u64::restore(r)?;
            let semispace_chunks = usize::restore(r)?;
            let accumulated_survived = u64::restore(r)?;
            let old: Vec<ChunkId> = Vec::restore(r)?;
            let large: Vec<ChunkId> = Vec::restore(r)?;
            let counters = GcCounters::restore(r)?;
            let gc_cost = GcCostModel::restore(r)?;
            let os_cost = CostModel::restore(r)?;
            let pending = SimDuration::restore(r)?;
            let last_live_bytes = u64::restore(r)?;
            let now = SimTime::restore(r)?;
            let rate_mark = SimTime::restore(r)?;
            let allocated_since_mark = u64::restore(r)?;
            let deopt_code_bytes = u64::restore(r)?;
            let next_major_threshold = u64::restore(r)?;
            // The address index must name live chunk slots whose base
            // address matches the index key.
            for (&addr, &id) in &addr_to_chunk {
                match chunks.get(id.index()) {
                    Some(Some(c)) if c.addr.0 == addr => {}
                    _ => return Err(SnapError::Corrupt("V8Heap addr_to_chunk mismatch")),
                }
            }
            for &id in from.iter().chain(&to).chain(&old).chain(&large) {
                if chunks.get(id.index()).is_none_or(|c| c.is_none()) {
                    return Err(SnapError::Corrupt("V8Heap space names a dead chunk"));
                }
            }
            if from_cursor > from.len() {
                return Err(SnapError::Corrupt("V8Heap from_cursor out of range"));
            }
            Ok(V8Heap {
                pid,
                config,
                graph,
                chunks,
                addr_to_chunk,
                from,
                to,
                from_cursor,
                from_offset,
                semispace_chunks,
                accumulated_survived,
                old,
                large,
                counters,
                gc_cost,
                os_cost,
                pending,
                last_live_bytes,
                now,
                rate_mark,
                allocated_since_mark,
                deopt_code_bytes,
                next_major_threshold,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(budget: u64) -> (System, V8Heap) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let heap = V8Heap::new(&mut sys, pid, V8Config::for_budget(budget)).unwrap();
        (sys, heap)
    }

    /// Allocates `n` handle-rooted objects of `size` inside one scope.
    fn burst(
        sys: &mut System,
        heap: &mut V8Heap,
        n: usize,
        size: u32,
    ) -> Vec<ObjectId> {
        let mut out = Vec::new();
        for _ in 0..n {
            let id = heap.alloc(sys, size, ObjectKind::Data).unwrap();
            heap.graph_mut().add_handle(id);
            out.push(id);
        }
        out
    }

    #[test]
    fn young_allocation_bumps_through_chunks() {
        let (mut sys, mut heap) = setup(256 << 20);
        let scope = heap.graph_mut().push_handle_scope();
        burst(&mut sys, &mut heap, 10, 60 << 10);
        // 10 × 60 KiB does not fit one 252 KiB payload: several chunks.
        assert!(heap.from.len() >= 2);
        assert!(heap.resident_heap_bytes(&sys) >= 600 << 10);
        heap.graph_mut().pop_handle_scope(scope);
    }

    #[test]
    fn scavenge_copies_survivors_and_frees_garbage() {
        let (mut sys, mut heap) = setup(256 << 20);
        let scope = heap.graph_mut().push_handle_scope();
        let keep = heap.alloc(&mut sys, 32 << 10, ObjectKind::Data).unwrap();
        heap.graph_mut().add_handle(keep);
        heap.graph_mut().pop_handle_scope(scope);
        // Garbage-only allocations to fill the young gen.
        let scope = heap.graph_mut().push_handle_scope();
        for _ in 0..50 {
            heap.alloc(&mut sys, 40 << 10, ObjectKind::Data).unwrap();
        }
        heap.graph_mut().pop_handle_scope(scope);
        heap.scavenge(&mut sys).unwrap();
        // keep is dead (scope popped); garbage freed too.
        assert!(!heap.graph().exists(keep));
        assert!(heap.counters().young_collections >= 1);
    }

    #[test]
    fn survivors_promote_on_second_scavenge() {
        let (mut sys, mut heap) = setup(256 << 20);
        let keep = heap.alloc(&mut sys, 16 << 10, ObjectKind::Data).unwrap();
        heap.graph_mut().add_global(keep);
        heap.scavenge(&mut sys).unwrap();
        assert_eq!(heap.graph().get(keep).space_tag, tag::YOUNG);
        heap.scavenge(&mut sys).unwrap();
        assert_eq!(heap.graph().get(keep).space_tag, tag::OLD);
        assert!(heap.counters().bytes_promoted >= 16 << 10);
    }

    #[test]
    fn young_doubles_under_sustained_survival() {
        let (mut sys, mut heap) = setup(256 << 20);
        let initial = heap.young_size();
        // Repeated invocations that keep MBs live across scavenges.
        for _ in 0..12 {
            let scope = heap.graph_mut().push_handle_scope();
            burst(&mut sys, &mut heap, 120, 30 << 10);
            heap.graph_mut().pop_handle_scope(scope);
        }
        assert!(
            heap.young_size() > initial,
            "young did not grow: {} vs {}",
            heap.young_size(),
            initial
        );
    }

    #[test]
    fn young_never_exceeds_cap() {
        let (mut sys, mut heap) = setup(256 << 20);
        for _ in 0..40 {
            let scope = heap.graph_mut().push_handle_scope();
            burst(&mut sys, &mut heap, 200, 30 << 10);
            heap.graph_mut().pop_handle_scope(scope);
        }
        assert!(heap.young_size() <= heap.config.young_max);
    }

    #[test]
    fn high_alloc_rate_prevents_shrink() {
        let (mut sys, mut heap) = setup(256 << 20);
        // Grow the young gen.
        for i in 0..12 {
            heap.set_now(SimTime(i * 50_000_000));
            let scope = heap.graph_mut().push_handle_scope();
            burst(&mut sys, &mut heap, 120, 30 << 10);
            heap.graph_mut().pop_handle_scope(scope);
        }
        let grown = heap.young_size();
        assert!(grown > heap.config.young_initial);
        // Keep allocating at a high rate: no shrink despite GCs.
        for i in 12..16 {
            heap.set_now(SimTime(i * 50_000_000));
            let scope = heap.graph_mut().push_handle_scope();
            burst(&mut sys, &mut heap, 120, 30 << 10);
            heap.graph_mut().pop_handle_scope(scope);
        }
        assert_eq!(heap.young_size(), grown);
    }

    #[test]
    fn low_alloc_rate_shrinks_young_after_gc() {
        let (mut sys, mut heap) = setup(256 << 20);
        for i in 0..12 {
            heap.set_now(SimTime(i * 50_000_000));
            let scope = heap.graph_mut().push_handle_scope();
            burst(&mut sys, &mut heap, 120, 30 << 10);
            heap.graph_mut().pop_handle_scope(scope);
        }
        let grown = heap.young_size();
        assert!(grown > heap.config.young_initial);
        // A long idle gap then a GC: rate is ~0, shrink happens.
        heap.set_now(SimTime(1_000_000_000_000));
        heap.scavenge(&mut sys).unwrap();
        assert!(heap.young_size() < grown);
    }

    #[test]
    fn major_gc_rebuilds_free_lists_and_unmaps_free_chunks() {
        let (mut sys, mut heap) = setup(256 << 20);
        // Tenure a bunch of objects, then drop most of them.
        let mut kept = Vec::new();
        for i in 0..300 {
            let id = heap.alloc(&mut sys, 8 << 10, ObjectKind::Data).unwrap();
            heap.graph_mut().add_global(id);
            // Drop a contiguous tail so whole chunks become free.
            if i >= 30 {
                kept.push(id);
            }
        }
        heap.scavenge(&mut sys).unwrap();
        heap.scavenge(&mut sys).unwrap();
        let committed_before = heap.committed();
        // Drop 90 % of the tenured objects.
        for id in kept {
            heap.graph_mut().remove_global(id);
        }
        heap.major_gc(&mut sys, true).unwrap();
        assert!(heap.committed() < committed_before, "no chunks unmapped");
        // Old space still hosts the remaining objects.
        let live = gc_core::trace::mark(heap.graph(), false, true);
        assert_eq!(live.live_bytes, 30 * (8 << 10));
    }

    #[test]
    fn aggressive_gc_clears_weak_code_and_records_deopt() {
        let (mut sys, mut heap) = setup(256 << 20);
        let holder = heap.alloc(&mut sys, 1 << 10, ObjectKind::Data).unwrap();
        heap.graph_mut().add_global(holder);
        let code = heap.alloc(&mut sys, 128 << 10, ObjectKind::Code).unwrap();
        heap.graph_mut().add_weak_ref(holder, code);
        // Weak-preserving GC keeps the code object.
        heap.major_gc(&mut sys, true).unwrap();
        assert!(heap.graph().exists(code));
        assert_eq!(heap.take_deopt_code_bytes(), 0);
        // Aggressive GC clears it and records the deopt bytes.
        heap.global_gc(&mut sys).unwrap();
        assert!(!heap.graph().exists(code));
        assert_eq!(heap.take_deopt_code_bytes(), 128 << 10);
    }

    #[test]
    fn reclaim_releases_young_and_old_free_pages() {
        let (mut sys, mut heap) = setup(256 << 20);
        let keep = heap.alloc(&mut sys, 64 << 10, ObjectKind::Data).unwrap();
        heap.graph_mut().add_global(keep);
        for _ in 0..8 {
            let scope = heap.graph_mut().push_handle_scope();
            burst(&mut sys, &mut heap, 80, 30 << 10);
            heap.graph_mut().pop_handle_scope(scope);
        }
        let resident_before = heap.resident_heap_bytes(&sys);
        let out = heap.reclaim(&mut sys, true).unwrap();
        assert!(out.released_bytes > 0);
        assert!(heap.graph().exists(keep));
        let resident_after = heap.resident_heap_bytes(&sys);
        assert!(resident_after < resident_before / 2);
        // Headers stay: every mapped chunk keeps at least its header.
        let n_chunks = heap.chunks.iter().flatten().count() as u64;
        assert!(resident_after >= n_chunks * simos::PAGE_SIZE);
    }

    #[test]
    fn large_objects_get_their_own_chunks_and_die_with_them() {
        let (mut sys, mut heap) = setup(256 << 20);
        let big = heap.alloc(&mut sys, 1 << 20, ObjectKind::Data).unwrap();
        assert_eq!(heap.graph().get(big).space_tag, tag::LARGE);
        assert_eq!(heap.large.len(), 1);
        let committed = heap.committed();
        assert!(committed >= 1 << 20);
        // Unrooted: dies at the next major GC, chunk unmapped.
        heap.major_gc(&mut sys, true).unwrap();
        assert!(!heap.graph().exists(big));
        assert!(heap.large.is_empty());
        assert!(heap.committed() < committed);
    }

    #[test]
    fn oom_at_heap_limit() {
        let (mut sys, mut heap) = setup(16 << 20);
        let mut err = None;
        for _ in 0..100 {
            match heap.alloc(&mut sys, 1 << 20, ObjectKind::Data) {
                Ok(id) => heap.graph_mut().add_global(id),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(V8HeapError::OutOfMemory { .. })));
    }

    #[test]
    fn committed_tracks_mapped_chunks() {
        let (mut sys, mut heap) = setup(256 << 20);
        let base = heap.committed();
        assert_eq!(base % CHUNK_SIZE, 0);
        burst_scoped(&mut sys, &mut heap);
        assert!(heap.committed() > base);
        assert_eq!(heap.committed() % simos::PAGE_SIZE, 0);
    }

    fn burst_scoped(sys: &mut System, heap: &mut V8Heap) {
        let scope = heap.graph_mut().push_handle_scope();
        for _ in 0..40 {
            let id = heap.alloc(sys, 40 << 10, ObjectKind::Data).unwrap();
            heap.graph_mut().add_handle(id);
        }
        heap.graph_mut().pop_handle_scope(scope);
    }
}
