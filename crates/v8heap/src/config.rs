//! V8 heap configuration.

use simos::cast;
use simos::SimDuration;

use crate::chunk::CHUNK_SIZE;

/// Configuration of a [`crate::V8Heap`].
#[derive(Debug, Clone, Copy)]
pub struct V8Config {
    /// Upper bound on total heap size (old space + young generation).
    pub max_heap: u64,
    /// Cap on the young generation (both semispaces together). The
    /// paper observes 32 MiB for a 256 MiB budget and 128 MiB for
    /// 1 GiB — one eighth of the instance budget.
    pub young_max: u64,
    /// Initial size of the young generation (both semispaces).
    pub young_initial: u64,
    /// Allocation-rate threshold below which the young generation may
    /// shrink after a GC (bytes per second of mutator time).
    pub shrink_alloc_rate: f64,
    /// Objects at least this large go to the large-object space.
    pub large_object_threshold: u32,
    /// Minimum mutator-time window for an allocation-rate estimate; a
    /// shorter window counts as "rate unknown" (no shrink).
    pub min_rate_window: SimDuration,
}

impl V8Config {
    /// Lambda-like configuration for a `budget`-byte instance: the heap
    /// may grow to 3/4 of the budget (the rest is node's native side),
    /// the young generation caps at `budget / 8`, and starts at 1 MiB.
    pub fn for_budget(budget: u64) -> V8Config {
        V8Config {
            max_heap: budget / 4 * 3,
            young_max: (budget / 8).max(2 * CHUNK_SIZE),
            young_initial: (2 * CHUNK_SIZE).max(1 << 20),
            shrink_alloc_rate: 8.0 * (1 << 20) as f64,
            large_object_threshold: cast::to_u32(CHUNK_SIZE - simos::PAGE_SIZE) / 2,
            min_rate_window: SimDuration::from_millis(10),
        }
    }

    /// Semispace size (bytes) for a given young-generation size.
    pub fn semispace(young: u64) -> u64 {
        young / 2
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configurations; these are programming
    /// errors.
    pub fn validate(&self) {
        assert!(self.young_initial >= 2 * CHUNK_SIZE, "young too small");
        assert!(self.young_max >= self.young_initial);
        assert!(self.max_heap > self.young_max);
        assert!(self.young_initial.is_multiple_of(2 * CHUNK_SIZE));
        assert!(u64::from(self.large_object_threshold) < CHUNK_SIZE);
    }
}

impl snapshot::Snapshot for V8Config {
    fn snap(&self, w: &mut snapshot::Writer) {
        let Self {
            max_heap,
            young_max,
            young_initial,
            shrink_alloc_rate,
            large_object_threshold,
            min_rate_window,
        } = self;
        max_heap.snap(w);
        young_max.snap(w);
        young_initial.snap(w);
        shrink_alloc_rate.snap(w);
        large_object_threshold.snap(w);
        min_rate_window.snap(w);
    }

    fn restore(r: &mut snapshot::Reader<'_>) -> Result<V8Config, snapshot::SnapError> {
        Ok(V8Config {
            max_heap: u64::restore(r)?,
            young_max: u64::restore(r)?,
            young_initial: u64::restore(r)?,
            shrink_alloc_rate: f64::restore(r)?,
            large_object_threshold: u32::restore(r)?,
            min_rate_window: SimDuration::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_budget_matches_paper_caps() {
        let c = V8Config::for_budget(256 << 20);
        c.validate();
        assert_eq!(c.young_max, 32 << 20);
        let c = V8Config::for_budget(1 << 30);
        c.validate();
        assert_eq!(c.young_max, 128 << 20);
    }

    #[test]
    #[should_panic(expected = "young too small")]
    fn tiny_young_rejected() {
        let mut c = V8Config::for_budget(256 << 20);
        c.young_initial = CHUNK_SIZE;
        c.validate();
    }
}
