//! Property tests for the V8 heap model.

use gc_core::object::ObjectKind;
use gc_core::trace::mark;
use proptest::prelude::*;
use simos::{SimTime, System};
use v8heap::{V8Config, V8Heap, CHUNK_SIZE};

#[derive(Debug, Clone)]
struct Invocation {
    temps: u16,
    temp_size: u32,
    keeps: u8,
    keep_size: u32,
    gap_ms: u16,
}

fn invocation() -> impl Strategy<Value = Invocation> {
    (1u16..60, 256u32..200_000, 0u8..4, 256u32..40_000, 1u16..500).prop_map(
        |(temps, temp_size, keeps, keep_size, gap_ms)| Invocation {
            temps,
            temp_size,
            keeps,
            keep_size,
            gap_ms,
        },
    )
}

fn run_invocation(
    sys: &mut System,
    heap: &mut V8Heap,
    now_ms: &mut u64,
    inv: &Invocation,
) -> Vec<gc_core::ObjectId> {
    *now_ms += inv.gap_ms as u64;
    heap.set_now(SimTime(*now_ms * 1_000_000));
    let scope = heap.graph_mut().push_handle_scope();
    let mut prev = None;
    for i in 0..inv.temps {
        let id = heap
            .alloc(sys, inv.temp_size, ObjectKind::Data)
            .expect("heap sized for workload");
        heap.graph_mut().add_handle(id);
        if let Some(p) = prev {
            if i % 4 == 0 {
                heap.graph_mut().add_ref(id, p);
            }
        }
        prev = Some(id);
    }
    let mut kept = Vec::new();
    for _ in 0..inv.keeps {
        let id = heap
            .alloc(sys, inv.keep_size, ObjectKind::Data)
            .expect("heap sized for workload");
        heap.graph_mut().add_global(id);
        kept.push(id);
    }
    heap.graph_mut().pop_handle_scope(scope);
    kept
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Retained objects survive arbitrary invocation sequences and the
    /// live bytes at freeze match exactly.
    #[test]
    fn retained_objects_survive(invs in prop::collection::vec(invocation(), 1..10)) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let mut heap = V8Heap::new(&mut sys, pid, V8Config::for_budget(256 << 20)).unwrap();
        let mut now_ms = 0;
        let mut retained = Vec::new();
        for inv in &invs {
            retained.extend(run_invocation(&mut sys, &mut heap, &mut now_ms, inv));
        }
        for id in &retained {
            prop_assert!(heap.graph().exists(*id), "retained object collected");
        }
        let expected: u64 = invs.iter().map(|i| i.keeps as u64 * i.keep_size as u64).sum();
        prop_assert_eq!(mark(heap.graph(), false, true).live_bytes, expected);
    }

    /// The young generation never exceeds its cap, and committed memory
    /// never exceeds the heap limit.
    #[test]
    fn caps_respected(invs in prop::collection::vec(invocation(), 1..10)) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let config = V8Config::for_budget(256 << 20);
        let mut heap = V8Heap::new(&mut sys, pid, config).unwrap();
        let mut now_ms = 0;
        for inv in &invs {
            run_invocation(&mut sys, &mut heap, &mut now_ms, inv);
            prop_assert!(heap.young_size() <= config.young_max);
            prop_assert!(heap.committed() <= config.max_heap);
            prop_assert!(heap.committed().is_multiple_of(simos::PAGE_SIZE));
        }
    }

    /// Reclaim is safe (no live object lost, live bytes unchanged) and
    /// effective (resident drops to roughly live + headers +
    /// fragmentation), and the heap keeps working afterwards.
    #[test]
    fn reclaim_safe_and_effective(invs in prop::collection::vec(invocation(), 1..8)) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let mut heap = V8Heap::new(&mut sys, pid, V8Config::for_budget(256 << 20)).unwrap();
        let mut now_ms = 0;
        let mut retained = Vec::new();
        for inv in &invs {
            retained.extend(run_invocation(&mut sys, &mut heap, &mut now_ms, inv));
        }
        let live_before = mark(heap.graph(), false, true).live_bytes;
        let resident_before = heap.resident_heap_bytes(&sys);
        let out = heap.reclaim(&mut sys, true).unwrap();
        prop_assert_eq!(out.live_bytes, live_before);
        for id in &retained {
            prop_assert!(heap.graph().exists(*id));
        }
        let resident_after = heap.resident_heap_bytes(&sys);
        prop_assert!(resident_after <= resident_before);
        // Bound: live bytes + one page of fragmentation slack per live
        // object + a header page per chunk.
        let chunks = heap.committed() / CHUNK_SIZE + 1;
        let live_objects = mark(heap.graph(), false, true).live_objects;
        let bound = live_before
            + (live_objects + chunks) * simos::PAGE_SIZE
            + simos::PAGE_SIZE;
        prop_assert!(
            resident_after <= bound,
            "resident {} exceeds bound {} (live {})",
            resident_after, bound, live_before
        );
        // Still functional.
        for inv in &invs {
            run_invocation(&mut sys, &mut heap, &mut now_ms, inv);
        }
    }

    /// Weak-preserving reclaim keeps weakly referenced code alive;
    /// aggressive collection removes it.
    #[test]
    fn weak_preservation_is_respected(invs in prop::collection::vec(invocation(), 1..5)) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let mut heap = V8Heap::new(&mut sys, pid, V8Config::for_budget(256 << 20)).unwrap();
        let holder = heap.alloc(&mut sys, 1024, ObjectKind::Data).unwrap();
        heap.graph_mut().add_global(holder);
        let code = heap.alloc(&mut sys, 64 << 10, ObjectKind::Code).unwrap();
        heap.graph_mut().add_weak_ref(holder, code);
        let mut now_ms = 0;
        for inv in &invs {
            run_invocation(&mut sys, &mut heap, &mut now_ms, inv);
        }
        heap.reclaim(&mut sys, true).unwrap();
        prop_assert!(heap.graph().exists(code), "weak-preserving reclaim dropped code");
        heap.global_gc(&mut sys).unwrap();
        prop_assert!(!heap.graph().exists(code));
        prop_assert_eq!(heap.take_deopt_code_bytes(), 64 << 10);
    }
}
