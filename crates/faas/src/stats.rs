//! Platform statistics: the Figure 9/10 metrics.

use simos::{SimDuration, SimTime};

use crate::histogram::LatencyHistogram;

/// Counters and distributions collected by the platform.
#[derive(Debug, Clone, Default)]
pub struct PlatformStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests fully completed (all chain stages).
    pub completed: u64,
    /// Requests that terminated with a failure (retries exhausted,
    /// deadline exceeded, breaker open, or rejected outright).
    pub failed: u64,
    /// Cold boots that failed partway through startup.
    pub boot_failures: u64,
    /// Instances that crashed mid-stage (injected faults plus genuine
    /// runtime heap exhaustion).
    pub crashes: u64,
    /// Crashes caused by the managed heap exhausting its budget.
    pub heap_exhaustions: u64,
    /// Frozen instances killed by the cgroup OOM killer under cache
    /// overcommit.
    pub oom_kills: u64,
    /// Thaws that failed, losing the frozen instance (the request
    /// falls back to a cold boot transparently).
    pub thaw_failures: u64,
    /// Retry attempts scheduled after a failure.
    pub retries: u64,
    /// Requests that exhausted their retry budget.
    pub retry_gave_up: u64,
    /// Circuit-breaker trips (a function quarantined).
    pub breaker_trips: u64,
    /// Requests fast-failed by an open breaker.
    pub breaker_fast_fails: u64,
    /// Reclamations that failed (injected or genuine runtime errors);
    /// they burn the timeout's CPU but release nothing.
    pub reclaim_failures: u64,
    /// Cold boots rejected because the estimated footprint exceeds the
    /// entire cache budget (see `Platform::try_start_stage`).
    pub rejected_too_large: u64,
    /// Tolerated stale events (e.g. `ReclaimDone` for an instance
    /// evicted mid-reclaim).
    pub stale_events: u64,
    /// Instance acquisitions served by a frozen (warm) instance.
    pub warm_starts: u64,
    /// Instance acquisitions that required a cold boot.
    pub cold_boots: u64,
    /// Instances evicted (destroyed) under memory pressure.
    pub evictions: u64,
    /// Reclamations performed by the memory manager.
    pub reclamations: u64,
    /// Bytes released by reclamations.
    pub reclaimed_bytes: u64,
    /// End-to-end request latency.
    pub latency: LatencyHistogram,
    /// Busy core-nanoseconds spent executing functions.
    pub exec_core_ns: f64,
    /// Busy core-nanoseconds spent cold-booting.
    pub boot_core_ns: f64,
    /// Busy core-nanoseconds spent on exit-time eager GC.
    pub gc_core_ns: f64,
    /// Busy core-nanoseconds spent on reclamations.
    pub reclaim_core_ns: f64,
    /// When the statistics window started.
    pub window_start: SimTime,
}

impl PlatformStats {
    /// Total injected-or-genuine fault events of every class. Zero in
    /// any fault-free run — the standing regression check that the
    /// fault machinery stays inert by default.
    pub fn fault_events(&self) -> u64 {
        self.boot_failures
            + self.crashes
            + self.oom_kills
            + self.thaw_failures
            + self.reclaim_failures
    }

    /// Requests that have terminated, successfully or not.
    pub fn terminated(&self) -> u64 {
        self.completed + self.failed
    }

    /// Cold-boot fraction of all instance acquisitions.
    pub fn cold_boot_fraction(&self) -> f64 {
        let total = self.cold_boots + self.warm_starts;
        if total == 0 {
            0.0
        } else {
            self.cold_boots as f64 / total as f64
        }
    }

    /// Cold boots per second over the window ending at `now`.
    pub fn cold_boot_rate(&self, now: SimTime) -> f64 {
        let window = now.saturating_since(self.window_start).as_secs_f64();
        if window <= 0.0 {
            0.0
        } else {
            self.cold_boots as f64 / window
        }
    }

    /// Completed requests per second over the window ending at `now`.
    pub fn throughput(&self, now: SimTime) -> f64 {
        let window = now.saturating_since(self.window_start).as_secs_f64();
        if window <= 0.0 {
            0.0
        } else {
            self.completed as f64 / window
        }
    }

    /// Mean CPU utilization (0..=1) over the window ending at `now`,
    /// for a machine with `cores` cores.
    pub fn cpu_utilization(&self, now: SimTime, cores: f64) -> f64 {
        let window = now.saturating_since(self.window_start).as_nanos() as f64;
        if window <= 0.0 {
            return 0.0;
        }
        let busy = self.exec_core_ns + self.boot_core_ns + self.gc_core_ns + self.reclaim_core_ns;
        (busy / (cores * window)).min(1.0)
    }

    /// The reclamation share of CPU (the paper reports ≤ 6.2 %).
    pub fn reclaim_cpu_fraction(&self, now: SimTime, cores: f64) -> f64 {
        let window = now.saturating_since(self.window_start).as_nanos() as f64;
        if window <= 0.0 {
            return 0.0;
        }
        (self.reclaim_core_ns / (cores * window)).min(1.0)
    }

    /// Resets the window (used after warm-up, §5.3).
    pub fn reset(&mut self, now: SimTime) {
        *self = PlatformStats {
            window_start: now,
            ..PlatformStats::default()
        };
    }

    /// Records busy core time for one activity.
    pub(crate) fn record_core_time(&mut self, kind: CoreTimeKind, wall: SimDuration, cpus: f64) {
        let ns = wall.as_nanos() as f64 * cpus;
        match kind {
            CoreTimeKind::Exec => self.exec_core_ns += ns,
            CoreTimeKind::Boot => self.boot_core_ns += ns,
            CoreTimeKind::Gc => self.gc_core_ns += ns,
            CoreTimeKind::Reclaim => self.reclaim_core_ns += ns,
        }
    }
}

/// Kinds of busy core time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CoreTimeKind {
    Exec,
    Boot,
    Gc,
    Reclaim,
}

/// Per-drain accumulator for the event-loop's `u64` counters. The hot
/// loop bumps these plain fields and [`StatsBatch::flush`] folds them
/// into [`PlatformStats`] at time-advance boundaries, so the per-event
/// path touches one small struct instead of the full stats block ~38
/// times per event. Only `u64` counters are batched: `f64` core time
/// and the latency histogram are recorded directly because reordering
/// float additions would change the golden digests.
///
/// `submitted` is absent — submission happens outside the drain loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct StatsBatch {
    pub completed: u64,
    pub failed: u64,
    pub boot_failures: u64,
    pub crashes: u64,
    pub heap_exhaustions: u64,
    pub oom_kills: u64,
    pub thaw_failures: u64,
    pub retries: u64,
    pub retry_gave_up: u64,
    pub breaker_trips: u64,
    pub breaker_fast_fails: u64,
    pub reclaim_failures: u64,
    pub rejected_too_large: u64,
    pub stale_events: u64,
    pub warm_starts: u64,
    pub cold_boots: u64,
    pub evictions: u64,
    pub reclamations: u64,
    pub reclaimed_bytes: u64,
}

impl StatsBatch {
    /// Whether every pending counter is zero (nothing to flush).
    pub fn is_empty(&self) -> bool {
        *self == StatsBatch::default()
    }

    /// Folds the pending counters into `stats` and resets the batch.
    pub fn flush(&mut self, stats: &mut PlatformStats) {
        let StatsBatch {
            completed,
            failed,
            boot_failures,
            crashes,
            heap_exhaustions,
            oom_kills,
            thaw_failures,
            retries,
            retry_gave_up,
            breaker_trips,
            breaker_fast_fails,
            reclaim_failures,
            rejected_too_large,
            stale_events,
            warm_starts,
            cold_boots,
            evictions,
            reclamations,
            reclaimed_bytes,
        } = std::mem::take(self);
        stats.completed += completed;
        stats.failed += failed;
        stats.boot_failures += boot_failures;
        stats.crashes += crashes;
        stats.heap_exhaustions += heap_exhaustions;
        stats.oom_kills += oom_kills;
        stats.thaw_failures += thaw_failures;
        stats.retries += retries;
        stats.retry_gave_up += retry_gave_up;
        stats.breaker_trips += breaker_trips;
        stats.breaker_fast_fails += breaker_fast_fails;
        stats.reclaim_failures += reclaim_failures;
        stats.rejected_too_large += rejected_too_large;
        stats.stale_events += stale_events;
        stats.warm_starts += warm_starts;
        stats.cold_boots += cold_boots;
        stats.evictions += evictions;
        stats.reclamations += reclamations;
        stats.reclaimed_bytes += reclaimed_bytes;
    }
}

mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for PlatformStats {
        fn snap(&self, w: &mut Writer) {
            let Self {
                submitted,
                completed,
                failed,
                boot_failures,
                crashes,
                heap_exhaustions,
                oom_kills,
                thaw_failures,
                retries,
                retry_gave_up,
                breaker_trips,
                breaker_fast_fails,
                reclaim_failures,
                rejected_too_large,
                stale_events,
                warm_starts,
                cold_boots,
                evictions,
                reclamations,
                reclaimed_bytes,
                latency,
                exec_core_ns,
                boot_core_ns,
                gc_core_ns,
                reclaim_core_ns,
                window_start,
            } = self;
            submitted.snap(w);
            completed.snap(w);
            failed.snap(w);
            boot_failures.snap(w);
            crashes.snap(w);
            heap_exhaustions.snap(w);
            oom_kills.snap(w);
            thaw_failures.snap(w);
            retries.snap(w);
            retry_gave_up.snap(w);
            breaker_trips.snap(w);
            breaker_fast_fails.snap(w);
            reclaim_failures.snap(w);
            rejected_too_large.snap(w);
            stale_events.snap(w);
            warm_starts.snap(w);
            cold_boots.snap(w);
            evictions.snap(w);
            reclamations.snap(w);
            reclaimed_bytes.snap(w);
            latency.snap(w);
            exec_core_ns.snap(w);
            boot_core_ns.snap(w);
            gc_core_ns.snap(w);
            reclaim_core_ns.snap(w);
            window_start.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<PlatformStats, SnapError> {
            Ok(PlatformStats {
                submitted: u64::restore(r)?,
                completed: u64::restore(r)?,
                failed: u64::restore(r)?,
                boot_failures: u64::restore(r)?,
                crashes: u64::restore(r)?,
                heap_exhaustions: u64::restore(r)?,
                oom_kills: u64::restore(r)?,
                thaw_failures: u64::restore(r)?,
                retries: u64::restore(r)?,
                retry_gave_up: u64::restore(r)?,
                breaker_trips: u64::restore(r)?,
                breaker_fast_fails: u64::restore(r)?,
                reclaim_failures: u64::restore(r)?,
                rejected_too_large: u64::restore(r)?,
                stale_events: u64::restore(r)?,
                warm_starts: u64::restore(r)?,
                cold_boots: u64::restore(r)?,
                evictions: u64::restore(r)?,
                reclamations: u64::restore(r)?,
                reclaimed_bytes: u64::restore(r)?,
                latency: LatencyHistogram::restore(r)?,
                exec_core_ns: f64::restore(r)?,
                boot_core_ns: f64::restore(r)?,
                gc_core_ns: f64::restore(r)?,
                reclaim_core_ns: f64::restore(r)?,
                window_start: SimTime::restore(r)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_divide_by_window() {
        let s = PlatformStats {
            cold_boots: 10,
            warm_starts: 30,
            completed: 40,
            ..PlatformStats::default()
        };
        let now = SimTime(20_000_000_000);
        assert!((s.cold_boot_rate(now) - 0.5).abs() < 1e-9);
        assert!((s.throughput(now) - 2.0).abs() < 1e-9);
        assert!((s.cold_boot_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn utilization_sums_components() {
        let mut s = PlatformStats::default();
        s.record_core_time(CoreTimeKind::Exec, SimDuration::from_secs(4), 1.0);
        s.record_core_time(CoreTimeKind::Boot, SimDuration::from_secs(2), 1.0);
        s.record_core_time(CoreTimeKind::Reclaim, SimDuration::from_secs(2), 0.5);
        let now = SimTime(10_000_000_000);
        // (4 + 2 + 1) busy core-seconds on 2 cores over 10 s = 0.35.
        assert!((s.cpu_utilization(now, 2.0) - 0.35).abs() < 1e-9);
        assert!((s.reclaim_cpu_fraction(now, 2.0) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn reset_moves_window() {
        let mut s = PlatformStats {
            completed: 100,
            ..PlatformStats::default()
        };
        s.reset(SimTime(5_000_000_000));
        assert_eq!(s.completed, 0);
        assert_eq!(s.window_start, SimTime(5_000_000_000));
        assert_eq!(s.throughput(SimTime(5_000_000_000)), 0.0);
    }

    #[test]
    fn fault_events_sum_every_class() {
        let mut s = PlatformStats::default();
        assert_eq!(s.fault_events(), 0);
        s.boot_failures = 1;
        s.crashes = 2;
        s.oom_kills = 3;
        s.thaw_failures = 4;
        s.reclaim_failures = 5;
        assert_eq!(s.fault_events(), 15);
        s.completed = 7;
        s.failed = 2;
        assert_eq!(s.terminated(), 9);
    }

    #[test]
    fn batch_flush_adds_and_resets() {
        let mut batch = StatsBatch::default();
        assert!(batch.is_empty());
        batch.completed = 3;
        batch.oom_kills = 1;
        batch.reclaimed_bytes = 4096;
        assert!(!batch.is_empty());
        let mut stats = PlatformStats {
            completed: 10,
            ..PlatformStats::default()
        };
        batch.flush(&mut stats);
        assert!(batch.is_empty());
        assert_eq!(stats.completed, 13);
        assert_eq!(stats.oom_kills, 1);
        assert_eq!(stats.reclaimed_bytes, 4096);
        // A second flush is a no-op.
        batch.flush(&mut stats);
        assert_eq!(stats.completed, 13);
    }

    #[test]
    fn zero_window_is_safe() {
        let s = PlatformStats::default();
        assert_eq!(s.throughput(SimTime::ZERO), 0.0);
        assert_eq!(s.cpu_utilization(SimTime::ZERO, 4.0), 0.0);
    }
}
