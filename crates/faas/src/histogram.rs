//! Latency recording and percentile extraction.

use simos::SimDuration;

/// A latency histogram backed by raw samples (exact percentiles; the
/// sample counts in this reproduction are small enough that sketching
/// is unnecessary).
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_nanos());
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest-rank, or `None` when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(SimDuration::from_nanos(self.samples[rank - 1]))
    }

    /// Mean latency, or `None` when empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|s| *s as u128).sum();
        Some(SimDuration::from_nanos(
            (sum / self.samples.len() as u128) as u64,
        ))
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.sorted = true;
    }

    /// Folds another histogram's samples into this one — how a fleet's
    /// per-shard latency distributions combine into one population for
    /// cluster-level percentiles. Deterministic as long as histograms
    /// are merged in a canonical order (the sort at percentile time
    /// makes the order irrelevant for quantiles anyway).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for LatencyHistogram {
        fn snap(&self, w: &mut Writer) {
            let Self { samples, sorted } = self;
            samples.snap(w);
            sorted.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<LatencyHistogram, SnapError> {
            let samples: Vec<u64> = Vec::restore(r)?;
            let sorted = bool::restore(r)?;
            if sorted && !samples.is_sorted() {
                return Err(SnapError::Corrupt("LatencyHistogram claims sorted but isn't"));
            }
            Ok(LatencyHistogram { samples, sorted })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        // Insert in reverse to exercise sorting.
        for i in (1..=n).rev() {
            h.record(SimDuration::from_millis(i));
        }
        h
    }

    #[test]
    fn percentiles_by_nearest_rank() {
        let mut h = filled(100);
        assert_eq!(h.percentile(0.5).unwrap(), SimDuration::from_millis(50));
        assert_eq!(h.percentile(0.99).unwrap(), SimDuration::from_millis(99));
        assert_eq!(h.percentile(1.0).unwrap(), SimDuration::from_millis(100));
        assert_eq!(h.percentile(0.0).unwrap(), SimDuration::from_millis(1));
    }

    #[test]
    fn empty_histogram_returns_none() {
        let mut h = LatencyHistogram::new();
        assert!(h.percentile(0.5).is_none());
        assert!(h.mean().is_none());
    }

    #[test]
    fn mean_is_exact() {
        let h = filled(10);
        assert_eq!(h.mean().unwrap(), SimDuration::from_micros(5500));
    }

    #[test]
    fn reset_clears() {
        let mut h = filled(5);
        h.reset();
        assert!(h.is_empty());
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn invalid_quantile_panics() {
        filled(3).percentile(1.5);
    }

    #[test]
    fn merge_concatenates_populations() {
        let mut a = filled(50);
        let b = filled(100);
        a.merge(&b);
        assert_eq!(a.len(), 150);
        // 150 samples: 1..=50 twice, 51..=100 once; the median of the
        // merged population is the 75th ranked sample = 38ms.
        assert_eq!(a.percentile(0.5).unwrap(), SimDuration::from_millis(38));
        assert_eq!(a.percentile(1.0).unwrap(), SimDuration::from_millis(100));
    }
}
