//! A simulated durable checkpoint store with seeded storage faults.
//!
//! [`CheckpointStore`] models the object store a FaaS control plane
//! writes its checkpoint containers to. Writes are append-only; a
//! [`crate::StorageFaultPlan`] injects the classic durability failures
//! *into the stored bytes* at put time — torn write (a prefix of the
//! container survives, cut at a frame boundary, commit record lost),
//! arbitrary truncation, a flipped bit, and a stale commit record (an
//! old commit spliced after new frames). The store never hides a fault
//! from itself: recovery works purely from the stored bytes, exactly
//! as a restarting host would.
//!
//! [`CheckpointStore::recover`] is the last-good lattice walk: newest
//! object first, it looks for a head whose container verifies and
//! whose parent chain resolves to a base among strictly older objects,
//! and returns that chain oldest-first. Every verification failure
//! just moves the walk back in time — corruption costs recency, never
//! a panic.

use snapshot::frame::{Container, COMMIT_KIND};
use snapshot::Reader;

use crate::fault::{StorageFault, StorageFaultInjector, StorageFaultPlan};

/// One stored checkpoint object, with the fault (if any) that was
/// injected into it at put time. The fault tag is bookkeeping for
/// assertions and reports — recovery never reads it.
#[derive(Debug, Clone)]
struct StoredObject {
    bytes: Vec<u8>,
    fault: Option<StorageFault>,
}

/// Append-only checkpoint object store with optional fault injection.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    objects: Vec<StoredObject>,
    injector: Option<StorageFaultInjector>,
    /// Commit-frame bytes of the last *pristine* container put, the
    /// splice source for [`StorageFault::StaleCommit`].
    last_commit: Option<Vec<u8>>,
    faults_injected: u64,
}

impl CheckpointStore {
    /// A store with perfectly reliable writes.
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// A store whose writes suffer faults drawn from `plan`.
    pub fn with_faults(plan: StorageFaultPlan) -> CheckpointStore {
        CheckpointStore {
            injector: Some(StorageFaultInjector::new(plan)),
            ..CheckpointStore::default()
        }
    }

    /// The installed fault plan, if any — panic-context material.
    pub fn fault_plan(&self) -> Option<StorageFaultPlan> {
        self.injector.as_ref().map(|i| *i.plan())
    }

    /// Number of objects ever put (faulted ones included).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when nothing has been put yet.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// How many puts had a fault injected.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Stores a checkpoint container, injecting at most one storage
    /// fault into the stored bytes. Returns the fault that fired, if
    /// any — callers may count it, but must never use it to steer
    /// recovery (a real host does not know its disk lied).
    pub fn put(&mut self, container: &[u8]) -> Option<StorageFault> {
        let fault = self.injector.as_mut().and_then(|i| i.next_fault());
        let stored = match fault {
            None => container.to_vec(),
            Some(f) => {
                self.faults_injected += 1;
                self.apply_fault(f, container)
            }
        };
        // The splice source for a *future* stale commit is this put's
        // pristine commit record — the store models a writer whose
        // buffered commit block lands late, over the next object.
        if let Some((commit_start, end)) = commit_extent(container) {
            self.last_commit = container.get(commit_start..end).map(<[u8]>::to_vec);
        }
        self.objects.push(StoredObject {
            bytes: stored,
            fault,
        });
        fault
    }

    fn apply_fault(&mut self, fault: StorageFault, container: &[u8]) -> Vec<u8> {
        let Some(injector) = self.injector.as_mut() else {
            return container.to_vec();
        };
        match fault {
            StorageFault::TornWrite => {
                // Cut at a frame boundary at or before the commit
                // record: frames after the cut — the commit always
                // among them — never hit the disk.
                let starts = frame_starts(container);
                let cut = match starts.get(injector.pick_index(starts.len() as u64) as usize) {
                    Some(&at) => at,
                    None => container.len().min(8),
                };
                container.get(..cut).unwrap_or(container).to_vec()
            }
            StorageFault::Truncate => {
                let cut = injector.pick_index(container.len() as u64) as usize;
                container.get(..cut).unwrap_or(container).to_vec()
            }
            StorageFault::BitFlip => {
                let mut bytes = container.to_vec();
                let at = match injector.plan().corrupt_at {
                    Some(at) => at % bytes.len().max(1) as u64,
                    None => injector.pick_index(bytes.len() as u64),
                };
                let bit = injector.pick_index(8) as u32;
                if let Some(b) = bytes.get_mut(at as usize) {
                    *b ^= 1u8 << bit;
                }
                bytes
            }
            StorageFault::StaleCommit => {
                match (self.last_commit.clone(), commit_extent(container)) {
                    (Some(old_commit), Some((commit_start, _))) => {
                        let mut forged =
                            container.get(..commit_start).unwrap_or(container).to_vec();
                        forged.extend_from_slice(&old_commit);
                        forged
                    }
                    // No earlier commit to splice (or an unparsable
                    // container): degrade to losing the commit — the
                    // closest physical outcome.
                    _ => {
                        let cut = commit_extent(container)
                            .map_or(container.len().min(8), |(start, _)| start);
                        container.get(..cut).unwrap_or(container).to_vec()
                    }
                }
            }
        }
    }

    /// Tears the newest object at its commit-frame boundary — the
    /// deterministic "power loss during the last checkpoint" used by
    /// the chaos gates.
    pub fn tear_newest(&mut self) {
        if let Some(obj) = self.objects.last_mut() {
            let cut = commit_extent(&obj.bytes).map_or(obj.bytes.len().min(8), |(s, _)| s);
            obj.bytes.truncate(cut);
            if obj.fault.is_none() {
                obj.fault = Some(StorageFault::TornWrite);
                self.faults_injected += 1;
            }
        }
    }

    /// Flips one bit of the newest object at `offset` (wrapped to its
    /// length) — the deterministic "latent media corruption" used by
    /// the chaos gates.
    pub fn corrupt_newest(&mut self, offset: u64) {
        if let Some(obj) = self.objects.last_mut() {
            let len = obj.bytes.len().max(1) as u64;
            if let Some(b) = obj.bytes.get_mut((offset % len) as usize) {
                *b ^= 1;
            }
            if obj.fault.is_none() {
                obj.fault = Some(StorageFault::BitFlip);
                self.faults_injected += 1;
            }
        }
    }

    /// The last-good recovery lattice: returns the newest verifiable
    /// `(head epoch, base-first chain)` — the latest object whose
    /// container opens clean *and* whose parent links resolve, through
    /// strictly older verifiable objects, all the way to a base.
    /// Returns `None` when no stored object yields a usable chain
    /// (recovery then restarts from nothing and replays the journal).
    pub fn recover(&self) -> Option<(u64, Vec<Vec<u8>>)> {
        'heads: for head_idx in (0..self.objects.len()).rev() {
            let head_bytes = &self.objects.get(head_idx)?.bytes;
            let Ok(head) = Container::open(head_bytes) else {
                continue;
            };
            let mut chain_rev = vec![head_bytes.clone()];
            let mut need = head.parent;
            let mut cursor = head_idx;
            while let Some(parent_epoch) = need {
                let mut found = false;
                for j in (0..cursor).rev() {
                    let Some(obj) = self.objects.get(j) else {
                        continue;
                    };
                    let Ok(c) = Container::open(&obj.bytes) else {
                        continue;
                    };
                    if c.epoch == parent_epoch {
                        chain_rev.push(obj.bytes.clone());
                        need = c.parent;
                        cursor = j;
                        found = true;
                        break;
                    }
                }
                if !found {
                    // The head is intact but an ancestor is not: the
                    // whole chain is unusable — walk further back.
                    continue 'heads;
                }
            }
            chain_rev.reverse();
            return Some((head.epoch, chain_rev));
        }
        None
    }
}

/// Byte offsets at which each frame of `bytes` starts (the commit
/// frame included, the 8-byte header excluded). Parsing stops at the
/// first malformed frame — for the injector's purposes the boundaries
/// found so far are the usable cut points.
fn frame_starts(bytes: &[u8]) -> Vec<usize> {
    let mut starts = Vec::new();
    let mut r = Reader::new(bytes);
    let Ok(()) = snapshot::read_header(&mut r, snapshot::frame::CONTAINER_MAGIC, snapshot::frame::CONTAINER_VERSION) else {
        return starts;
    };
    while r.remaining() > 0 {
        starts.push(bytes.len() - r.remaining());
        let Ok(_kind) = r.u32() else { break };
        let Ok(n) = r.seq_len() else { break };
        if r.take(n).is_err() || r.u64().is_err() {
            break;
        }
    }
    starts
}

/// `(start, end)` byte extent of the commit frame, when the container
/// parses far enough to find one.
fn commit_extent(bytes: &[u8]) -> Option<(usize, usize)> {
    let mut r = Reader::new(bytes);
    snapshot::read_header(&mut r, snapshot::frame::CONTAINER_MAGIC, snapshot::frame::CONTAINER_VERSION).ok()?;
    while r.remaining() > 0 {
        let start = bytes.len() - r.remaining();
        let kind = r.u32().ok()?;
        let n = r.seq_len().ok()?;
        r.take(n).ok()?;
        r.u64().ok()?;
        if kind == COMMIT_KIND {
            return Some((start, bytes.len() - r.remaining()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapshot::frame::ContainerWriter;

    fn base(epoch: u64, payload: &[u8]) -> Vec<u8> {
        let mut cw = ContainerWriter::new();
        cw.frame(1, payload);
        cw.frame(2, b"second frame");
        cw.commit(epoch, None)
    }

    fn delta(epoch: u64, parent: u64, payload: &[u8]) -> Vec<u8> {
        let mut cw = ContainerWriter::new();
        cw.frame(1, payload);
        cw.commit(epoch, Some(parent))
    }

    #[test]
    fn reliable_store_recovers_newest_chain() {
        let mut s = CheckpointStore::new();
        s.put(&base(1, b"b1"));
        s.put(&delta(2, 1, b"d2"));
        s.put(&delta(3, 2, b"d3"));
        let (epoch, chain) = s.recover().expect("chain");
        assert_eq!(epoch, 3);
        assert_eq!(chain.len(), 3);
        assert_eq!(Container::open(chain.first().unwrap()).unwrap().parent, None);
        assert_eq!(Container::open(chain.last().unwrap()).unwrap().epoch, 3);
    }

    #[test]
    fn torn_newest_falls_back_one_epoch() {
        let mut s = CheckpointStore::new();
        s.put(&base(1, b"b1"));
        s.put(&delta(2, 1, b"d2"));
        s.put(&delta(3, 2, b"d3"));
        s.tear_newest();
        let (epoch, chain) = s.recover().expect("fallback chain");
        assert_eq!(epoch, 2);
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn corrupt_ancestor_invalidates_descendants() {
        let mut s = CheckpointStore::new();
        s.put(&base(1, b"b1"));
        s.put(&base(2, b"b2"));
        s.put(&delta(3, 2, b"d3"));
        // Corrupt the *middle* object (epoch-2 base): the epoch-3
        // delta verifies on its own but its ancestry is gone, so
        // recovery must land on the older base.
        if let Some(obj) = s.objects.get_mut(1) {
            let mid = obj.bytes.len() / 2;
            if let Some(b) = obj.bytes.get_mut(mid) {
                *b ^= 0x40;
            }
        }
        let (epoch, chain) = s.recover().expect("older base survives");
        assert_eq!(epoch, 1);
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn all_objects_corrupt_recovers_none() {
        let mut s = CheckpointStore::with_faults(StorageFaultPlan::corrupt_at(9, 40));
        assert_eq!(s.put(&base(1, b"b1")), Some(StorageFault::BitFlip));
        assert_eq!(s.put(&delta(2, 1, b"d2")), Some(StorageFault::BitFlip));
        assert_eq!(s.faults_injected(), 2);
        assert!(s.recover().is_none());
    }

    #[test]
    fn fault_sequence_is_deterministic() {
        let run = || {
            let mut s = CheckpointStore::with_faults(StorageFaultPlan::uniform(77, 0.5));
            let mut tags = Vec::new();
            let mut parent = None;
            for epoch in 1..=20u64 {
                let mut cw = ContainerWriter::new();
                cw.frame(1, &epoch.to_le_bytes());
                tags.push(s.put(&cw.commit(epoch, parent)));
                parent = Some(epoch);
            }
            (tags, s.recover().map(|(e, c)| (e, c.len())))
        };
        assert_eq!(run(), run());
        let (tags, _) = run();
        assert!(tags.iter().any(Option::is_some), "50% rate fired nothing");
    }

    #[test]
    fn stale_commit_is_rejected_by_verification() {
        let mut s = CheckpointStore::with_faults(StorageFaultPlan {
            seed: 5,
            torn_write: 0.0,
            truncate: 0.0,
            bit_flip: 0.0,
            stale_commit: 1.0,
            corrupt_at: None,
        });
        // First put degrades to torn (no earlier commit to splice).
        assert_eq!(s.put(&base(1, b"b1")), Some(StorageFault::StaleCommit));
        assert!(s.recover().is_none());
        // Second put gets the first container's commit spliced on; the
        // body CRC catches the forgery.
        s.put(&base(2, b"a very different second body"));
        assert!(
            Container::open(&s.objects.last().unwrap().bytes).is_err(),
            "stale commit must not verify"
        );
        assert!(s.recover().is_none());
    }

    #[test]
    fn corrupt_newest_is_detected_and_survivable() {
        let mut s = CheckpointStore::new();
        s.put(&base(1, b"b1"));
        s.put(&delta(2, 1, b"d2"));
        s.corrupt_newest(64);
        assert!(Container::open(&s.objects.last().unwrap().bytes).is_err());
        let (epoch, _) = s.recover().expect("base survives");
        assert_eq!(epoch, 1);
    }
}
