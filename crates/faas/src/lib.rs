//! # faas — an OpenWhisk-like FaaS platform simulator
//!
//! This crate models the platform side of the paper: the component that
//! launches function instances, *freezes* them after each invocation
//! (OpenWhisk pauses the container; Lambda behaves observably the same,
//! §2.1), caches frozen instances within a memory budget, evicts them
//! under pressure, and — with Desiccant plugged in — reclaims their
//! frozen garbage instead.
//!
//! The simulation is discrete-event and fully deterministic:
//!
//! * [`platform::Platform`] — the controller: request routing, instance
//!   pools per function (and per chain stage), cold boots, freeze/thaw,
//!   the instance cache with LRU eviction, a core-limited CPU model
//!   (functions run at their cgroup share; cold boots burn a full
//!   core), and chain orchestration;
//! * [`manager::MemoryManager`] — the hook Desiccant implements:
//!   the platform reports frozen-instance views, evictions, and
//!   reclamation profiles; the manager answers with instances to
//!   reclaim (§4.2–§4.5);
//! * [`config::PlatformConfig`] — cache budget, per-instance budget and
//!   CPU share, cores, cold-boot overhead, and the environment flavour
//!   (OpenWhisk shares runtime libraries between same-language
//!   instances; Lambda does not);
//! * [`stats::PlatformStats`] + [`histogram::LatencyHistogram`] — cold
//!   boot counts, throughput, CPU utilization, and tail latency: the
//!   Figure 9/10 metrics;
//! * [`fault::FaultPlan`] + [`fault::FaultInjector`] — a seeded,
//!   virtual-clock-driven fault schedule (boot failures, crashes,
//!   thaw/reclaim failures, OOM kills); off by default and
//!   byte-identical to a fault-free build when disabled;
//! * [`error::PlatformError`] — typed errors for event-loop and
//!   teardown invariants (stale events, cache/process residue).
//!
//! # Examples
//!
//! ```
//! use faas::config::PlatformConfig;
//! use faas::platform::{GcMode, Platform};
//! use simos::SimTime;
//!
//! let mut p = Platform::new(PlatformConfig::default(), workloads::catalog(), GcMode::Vanilla, None);
//! let fn_idx = p.function_index("file-hash").unwrap();
//! for i in 0..10 {
//!     p.submit(SimTime(i * 500_000_000), fn_idx);
//! }
//! p.run_until(SimTime(20_000_000_000));
//! assert_eq!(p.stats().completed, 10);
//! assert!(p.stats().cold_boots >= 1);
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod error;
pub mod fault;
pub mod histogram;
pub mod manager;
pub mod platform;
pub mod queue;
pub mod slab;
pub mod stats;
pub mod store;

pub use config::{EnvFlavor, PlatformConfig};
pub use error::{PlatformError, PlatformResult};
pub use fault::{
    CrashPlan, FaultInjector, FaultPlan, OutageKind, OutagePlan, OutageWindow, StorageFault,
    StorageFaultInjector, StorageFaultPlan,
};
pub use store::CheckpointStore;
pub use histogram::LatencyHistogram;
pub use manager::{FrozenView, MemoryManager, ReclaimProfile};
pub use platform::{FailReason, FrozenFnSummary, GcMode, InstanceId, Platform};
pub use queue::{EventQueue, QueueImpl};
pub use stats::PlatformStats;
