//! Deterministic fault injection.
//!
//! Real platforms operate under memory pressure where cold boots fail,
//! instances are OOM-killed mid-stage, and reclamations race thaws and
//! time out. The simulator models a fail-free world by default; this
//! module adds a *seeded, virtual-clock-driven* fault schedule on top:
//!
//! * a [`FaultPlan`] gives each fault class an independent probability,
//!   drawn at the corresponding lifecycle decision point (boot start,
//!   stage start, thaw, reclaim start, cache-charge increase);
//! * a [`FaultInjector`] owns a dedicated splitmix64 stream seeded from
//!   the plan, advanced **only** at decision points — never by the
//!   simulation itself — so a given `(plan, workload)` pair always
//!   produces the same fault schedule;
//! * when no plan is installed ([`crate::PlatformConfig::faults`] is
//!   `None`) the injector does not exist and no draw ever happens:
//!   the platform is byte-identical to a build without this module
//!   (pinned by `bench`'s golden-replay checksum test).

/// Per-decision-point fault probabilities, all in `[0, 1]`.
///
/// A probability of zero disables that fault class without disturbing
/// the draw sequence of the others (each decision point consumes
/// exactly one draw only when its class is enabled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's private random stream.
    pub seed: u64,
    /// A cold boot fails partway through container/runtime startup.
    pub boot_fail: f64,
    /// A running instance crashes mid-stage.
    pub crash: f64,
    /// Thawing (unpausing) a frozen instance fails; the instance is
    /// lost and the request falls back to a cold boot.
    pub thaw_fail: f64,
    /// A reclamation fails (runtime wedged / cgroup probe timeout):
    /// CPU is burned for the timeout but no memory is released.
    pub reclaim_fail: f64,
    /// Under cache overcommit, the cgroup OOM killer takes out the
    /// largest frozen instance.
    pub oom_kill: f64,
}

impl FaultPlan {
    /// A plan injecting every fault class at the same `rate`.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            boot_fail: rate,
            crash: rate,
            thaw_fail: rate,
            reclaim_fail: rate,
            oom_kill: rate,
        }
    }

    /// A plan with every class disabled (useful to verify the fault
    /// machinery is inert: it must behave identically to no plan).
    pub fn disabled(seed: u64) -> FaultPlan {
        FaultPlan::uniform(seed, 0.0)
    }

    /// True if every fault class has probability zero.
    pub fn is_inert(&self) -> bool {
        self.boot_fail == 0.0
            && self.crash == 0.0
            && self.thaw_fail == 0.0
            && self.reclaim_fail == 0.0
            && self.oom_kill == 0.0
    }

    /// Sanity checks.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or not finite.
    pub fn validate(&self) {
        for (name, p) in [
            ("boot_fail", self.boot_fail),
            ("crash", self.crash),
            ("thaw_fail", self.thaw_fail),
            ("reclaim_fail", self.reclaim_fail),
            ("oom_kill", self.oom_kill),
        ] {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "fault probability {name} = {p} outside [0, 1]"
            );
        }
    }
}

/// The seeded fault stream: decides, at each lifecycle decision point,
/// whether the planned fault fires.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: u64,
}

impl FaultInjector {
    /// Creates an injector over `plan` (validated).
    pub fn new(plan: FaultPlan) -> FaultInjector {
        plan.validate();
        FaultInjector {
            plan,
            // splitmix64 tolerates any seed, including zero.
            state: plan.seed,
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// splitmix64: one step of the private stream.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// One Bernoulli draw with probability `p`. `p == 0` consumes no
    /// randomness, so disabling one fault class does not shift the
    /// schedule of the others.
    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.unit() < p
    }

    /// A uniform fraction in `[0.1, 0.9)` — the point within a boot or
    /// stage at which an injected failure strikes.
    fn strike_point(&mut self) -> f64 {
        0.1 + 0.8 * self.unit()
    }

    /// Decides whether the cold boot starting now fails; `Some(frac)`
    /// is the fraction of the boot time spent before the failure.
    pub fn boot_fails(&mut self) -> Option<f64> {
        if self.roll(self.plan.boot_fail) {
            Some(self.strike_point())
        } else {
            None
        }
    }

    /// Decides whether the stage starting now crashes; `Some(frac)` is
    /// the fraction of the stage wall time before the crash.
    pub fn stage_crashes(&mut self) -> Option<f64> {
        if self.roll(self.plan.crash) {
            Some(self.strike_point())
        } else {
            None
        }
    }

    /// Decides whether this thaw fails (losing the instance).
    pub fn thaw_fails(&mut self) -> bool {
        self.roll(self.plan.thaw_fail)
    }

    /// Decides whether the reclamation starting now fails.
    pub fn reclaim_fails(&mut self) -> bool {
        self.roll(self.plan.reclaim_fail)
    }

    /// Decides whether the OOM killer fires for the current overcommit.
    pub fn oom_strikes(&mut self) -> bool {
        self.roll(self.plan.oom_kill)
    }
}

mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for FaultPlan {
        fn snap(&self, w: &mut Writer) {
            let Self {
                seed,
                boot_fail,
                crash,
                thaw_fail,
                reclaim_fail,
                oom_kill,
            } = self;
            seed.snap(w);
            boot_fail.snap(w);
            crash.snap(w);
            thaw_fail.snap(w);
            reclaim_fail.snap(w);
            oom_kill.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<FaultPlan, SnapError> {
            let plan = FaultPlan {
                seed: u64::restore(r)?,
                boot_fail: f64::restore(r)?,
                crash: f64::restore(r)?,
                thaw_fail: f64::restore(r)?,
                reclaim_fail: f64::restore(r)?,
                oom_kill: f64::restore(r)?,
            };
            for p in [
                plan.boot_fail,
                plan.crash,
                plan.thaw_fail,
                plan.reclaim_fail,
                plan.oom_kill,
            ] {
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    return Err(SnapError::Corrupt("fault probability outside [0, 1]"));
                }
            }
            Ok(plan)
        }
    }

    impl Snapshot for FaultInjector {
        fn snap(&self, w: &mut Writer) {
            let Self { plan, state } = self;
            plan.snap(w);
            state.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<FaultInjector, SnapError> {
            // Construct directly: the stream cursor must survive, and
            // `FaultPlan::restore` already re-checked the ranges
            // `FaultInjector::new` would assert.
            Ok(FaultInjector {
                plan: FaultPlan::restore(r)?,
                state: u64::restore(r)?,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn injector_snapshot_preserves_stream_position() {
            let mut a = FaultInjector::new(FaultPlan::uniform(77, 0.4));
            for _ in 0..137 {
                a.thaw_fails();
            }
            let bytes = snapshot::encode(&a);
            let mut b: FaultInjector = snapshot::decode(&bytes).unwrap();
            for _ in 0..500 {
                assert_eq!(a.boot_fails(), b.boot_fails());
                assert_eq!(a.oom_strikes(), b.oom_strikes());
            }
        }

        #[test]
        fn crash_plan_schedules() {
            let once = CrashPlan::at(100);
            assert_eq!(once.next_after(0), Some(100));
            assert_eq!(once.next_after(99), Some(100));
            assert_eq!(once.next_after(100), None);
            let periodic = CrashPlan::every(50);
            assert_eq!(periodic.next_after(0), Some(50));
            assert_eq!(periodic.next_after(50), Some(100));
            assert_eq!(periodic.next_after(149), Some(150));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultInjector::new(FaultPlan::uniform(7, 0.3));
        let mut b = FaultInjector::new(FaultPlan::uniform(7, 0.3));
        for _ in 0..1000 {
            assert_eq!(a.boot_fails(), b.boot_fails());
            assert_eq!(a.stage_crashes(), b.stage_crashes());
            assert_eq!(a.thaw_fails(), b.thaw_fails());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(FaultPlan::uniform(1, 0.5));
        let mut b = FaultInjector::new(FaultPlan::uniform(2, 0.5));
        let hits = |inj: &mut FaultInjector| -> Vec<bool> {
            (0..256).map(|_| inj.thaw_fails()).collect()
        };
        assert_ne!(hits(&mut a), hits(&mut b));
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let mut inj = FaultInjector::new(FaultPlan::uniform(42, 0.25));
        let n = 100_000;
        let hits = (0..n).filter(|_| inj.reclaim_fails()).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "observed rate {rate}");
    }

    #[test]
    fn zero_rate_consumes_no_randomness() {
        let mut a = FaultInjector::new(FaultPlan {
            crash: 0.0,
            ..FaultPlan::uniform(9, 0.5)
        });
        let mut b = FaultInjector::new(FaultPlan {
            crash: 0.0,
            ..FaultPlan::uniform(9, 0.5)
        });
        // Interleave disabled draws on `a` only; enabled draws must
        // still agree, because disabled classes touch no state.
        let mut seq_a = Vec::new();
        let mut seq_b = Vec::new();
        for _ in 0..100 {
            assert!(a.stage_crashes().is_none());
            seq_a.push(a.thaw_fails());
            seq_b.push(b.thaw_fails());
        }
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn strike_points_stay_in_range() {
        let mut inj = FaultInjector::new(FaultPlan::uniform(3, 1.0));
        for _ in 0..1000 {
            let f = inj.boot_fails().expect("rate 1.0 always fires");
            assert!((0.1..0.9).contains(&f));
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_probability_rejected() {
        FaultPlan {
            crash: 1.5,
            ..FaultPlan::disabled(0)
        }
        .validate();
    }

    #[test]
    fn inertness_predicate() {
        assert!(FaultPlan::disabled(5).is_inert());
        assert!(!FaultPlan::uniform(5, 0.1).is_inert());
    }
}

/// A deterministic *kill schedule* for crash-recovery testing: the
/// platform is killed (its event loop aborted mid-run) once it has
/// handled a given number of events, either once or periodically.
///
/// Unlike the probabilistic [`FaultPlan`] classes — which the platform
/// absorbs and retries — a `CrashPlan` models losing the whole process:
/// the driver is expected to restore the latest checkpoint, replay its
/// journal, and continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    first: u64,
    every: Option<u64>,
}

impl CrashPlan {
    /// Kill once, after `n` handled events.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (the run would die before doing anything).
    pub fn at(n: u64) -> CrashPlan {
        assert!(n > 0, "crash point must be positive");
        CrashPlan { first: n, every: None }
    }

    /// Kill after every `n` handled events (at `n`, `2n`, `3n`, ...).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn every(n: u64) -> CrashPlan {
        assert!(n > 0, "crash interval must be positive");
        CrashPlan {
            first: n,
            every: Some(n),
        }
    }

    /// The smallest scheduled crash point strictly greater than
    /// `handled`, or `None` when the schedule is exhausted.
    pub fn next_after(&self, handled: u64) -> Option<u64> {
        match self.every {
            None => (self.first > handled).then_some(self.first),
            Some(step) => {
                let periods = handled / step + 1;
                periods.checked_mul(step)
            }
        }
    }
}

/// How a checkpoint write to the simulated durable store is corrupted.
///
/// Each variant models one real failure of a non-atomic multi-write
/// checkpoint protocol; the framed container format
/// ([`snapshot::frame`]) is designed so every one of them is detected
/// at open time rather than silently restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The write is torn at a frame boundary: a clean prefix of whole
    /// frames persists, the commit record is lost.
    TornWrite,
    /// The object is cut at an arbitrary byte offset — a ragged tail
    /// that may end mid-frame.
    Truncate,
    /// A single bit flips at a (seeded or pinned) byte offset.
    BitFlip,
    /// The body persists but the trailing commit record is the
    /// *previous* checkpoint's — a stale commit spliced over new
    /// frames, as when the commit sector write is reordered and lost.
    StaleCommit,
}

impl StorageFault {
    /// Short name for diagnostics and panic messages.
    pub fn name(&self) -> &'static str {
        match self {
            StorageFault::TornWrite => "torn-write",
            StorageFault::Truncate => "truncate",
            StorageFault::BitFlip => "bit-flip",
            StorageFault::StaleCommit => "stale-commit",
        }
    }
}

/// Per-class probabilities of corrupting one checkpoint write, plus an
/// optional pinned corruption offset. All probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageFaultPlan {
    /// Seed of the private splitmix64 stream.
    pub seed: u64,
    /// Probability the write is torn at a frame boundary.
    pub torn_write: f64,
    /// Probability the write is cut at an arbitrary byte offset.
    pub truncate: f64,
    /// Probability one bit flips.
    pub bit_flip: f64,
    /// Probability the commit record is the previous checkpoint's.
    pub stale_commit: f64,
    /// When set, a bit flip strikes at exactly this byte offset
    /// (clamped to the object) instead of a drawn one.
    pub corrupt_at: Option<u64>,
}

impl StorageFaultPlan {
    /// A plan corrupting writes with every class at the same `rate`.
    pub fn uniform(seed: u64, rate: f64) -> StorageFaultPlan {
        StorageFaultPlan {
            seed,
            torn_write: rate,
            truncate: rate,
            bit_flip: rate,
            stale_commit: rate,
            corrupt_at: None,
        }
    }

    /// A plan injecting only frame-boundary torn writes at `rate`.
    pub fn torn(seed: u64, rate: f64) -> StorageFaultPlan {
        StorageFaultPlan {
            torn_write: rate,
            ..StorageFaultPlan::uniform(seed, 0.0)
        }
    }

    /// A plan flipping one bit of *every* write at byte `offset`.
    pub fn corrupt_at(seed: u64, offset: u64) -> StorageFaultPlan {
        StorageFaultPlan {
            bit_flip: 1.0,
            corrupt_at: Some(offset),
            ..StorageFaultPlan::uniform(seed, 0.0)
        }
    }

    /// True if every class has probability zero.
    pub fn is_inert(&self) -> bool {
        self.torn_write == 0.0
            && self.truncate == 0.0
            && self.bit_flip == 0.0
            && self.stale_commit == 0.0
    }

    /// Sanity checks.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or not finite.
    pub fn validate(&self) {
        for (name, p) in [
            ("torn_write", self.torn_write),
            ("truncate", self.truncate),
            ("bit_flip", self.bit_flip),
            ("stale_commit", self.stale_commit),
        ] {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "storage fault probability {name} = {p} outside [0, 1]"
            );
        }
    }
}

/// The seeded storage fault stream: decides, at each checkpoint write,
/// whether and how the write is corrupted. Classes are drawn in a
/// fixed order (torn, truncate, flip, stale) and the first that fires
/// wins; zero-probability classes consume no randomness, so disabling
/// one does not shift the schedule of the others.
#[derive(Debug, Clone)]
pub struct StorageFaultInjector {
    plan: StorageFaultPlan,
    state: u64,
}

impl StorageFaultInjector {
    /// Creates an injector over `plan` (validated).
    pub fn new(plan: StorageFaultPlan) -> StorageFaultInjector {
        plan.validate();
        StorageFaultInjector {
            plan,
            state: plan.seed,
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &StorageFaultPlan {
        &self.plan
    }

    /// splitmix64: one step of the private stream.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.unit() < p
    }

    /// Decides the fate of the checkpoint write happening now.
    pub fn next_fault(&mut self) -> Option<StorageFault> {
        for (fault, p) in [
            (StorageFault::TornWrite, self.plan.torn_write),
            (StorageFault::Truncate, self.plan.truncate),
            (StorageFault::BitFlip, self.plan.bit_flip),
            (StorageFault::StaleCommit, self.plan.stale_commit),
        ] {
            if self.roll(p) {
                return Some(fault);
            }
        }
        None
    }

    /// A uniform index in `[0, n)`; `n` must be nonzero.
    pub fn pick_index(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "pick_index over an empty range");
        self.next_u64() % n.max(1)
    }
}

#[cfg(test)]
mod storage_tests {
    use super::*;

    #[test]
    fn storage_schedule_is_deterministic() {
        let mut a = StorageFaultInjector::new(StorageFaultPlan::uniform(9, 0.4));
        let mut b = StorageFaultInjector::new(StorageFaultPlan::uniform(9, 0.4));
        for _ in 0..500 {
            assert_eq!(a.next_fault(), b.next_fault());
        }
    }

    #[test]
    fn inert_plan_never_faults() {
        let mut inj = StorageFaultInjector::new(StorageFaultPlan::uniform(3, 0.0));
        assert!(StorageFaultPlan::uniform(3, 0.0).is_inert());
        for _ in 0..100 {
            assert_eq!(inj.next_fault(), None);
        }
    }

    #[test]
    fn corrupt_at_plan_always_flips() {
        let plan = StorageFaultPlan::corrupt_at(1, 64);
        assert_eq!(plan.corrupt_at, Some(64));
        let mut inj = StorageFaultInjector::new(plan);
        for _ in 0..20 {
            assert_eq!(inj.next_fault(), Some(StorageFault::BitFlip));
        }
    }

    #[test]
    #[should_panic]
    fn storage_plan_rejects_bad_probability() {
        StorageFaultPlan {
            torn_write: -0.5,
            ..StorageFaultPlan::uniform(0, 0.0)
        }
        .validate();
    }
}

// ---------------------------------------------------------------------------
// Fleet-level outage schedules
// ---------------------------------------------------------------------------

/// How a shard is unavailable during an [`OutageWindow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutageKind {
    /// The machine is off: nothing executes, state is frozen, and on
    /// heal the shard must re-admit itself from its durable checkpoint
    /// stream and catch up through its journal.
    Down,
    /// The machine keeps running but is unreachable from the router:
    /// no new work arrives and no barrier report gets out, yet
    /// in-flight work drains normally.
    Partitioned,
}

impl OutageKind {
    /// Short name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            OutageKind::Down => "down",
            OutageKind::Partitioned => "partitioned",
        }
    }
}

/// One contiguous span of barrier rounds during which one shard is
/// unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// The shard the window applies to.
    pub shard: u32,
    /// First dark round (round indices count completed barriers).
    pub start: u64,
    /// Number of consecutive dark rounds (must be positive).
    pub rounds: u64,
    /// Whether the shard is off or merely unreachable.
    pub kind: OutageKind,
    /// A *planned* window is announced one round ahead, giving the
    /// shard a chance to drain its warm set before going dark.
    pub planned: bool,
}

impl OutageWindow {
    fn covers(&self, shard: u32, round: u64) -> bool {
        self.shard == shard && round >= self.start && round - self.start < self.rounds
    }
}

/// A deterministic fleet outage schedule: per-shard windows of whole
/// barrier rounds during which the shard is [`OutageKind::Down`] or
/// [`OutageKind::Partitioned`].
///
/// The schedule is pure data, evaluated by round index — never by
/// wall clock or event count — so a cluster replaying it is
/// byte-identical at any worker count and under any kill schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutagePlan {
    /// The windows, in whatever order they were declared.
    pub windows: Vec<OutageWindow>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl OutagePlan {
    /// A plan over explicit windows.
    pub fn new(windows: Vec<OutageWindow>) -> OutagePlan {
        OutagePlan { windows }
    }

    /// A seeded plan: `count` windows drawn from a private splitmix64
    /// stream, each hitting a uniform shard in `[0, shards)` for
    /// `1..=max_len` rounds starting somewhere in `[1, horizon)`.
    /// Kind and plannedness are drawn per window. Windows may overlap;
    /// [`OutagePlan::dark`] resolves overlaps with `Down` winning.
    ///
    /// # Panics
    ///
    /// Panics if `shards`, `horizon`, or `max_len` is zero.
    pub fn seeded(seed: u64, shards: u32, horizon: u64, count: usize, max_len: u64) -> OutagePlan {
        assert!(shards > 0, "a plan needs at least one shard");
        assert!(horizon > 1, "horizon must leave room for a window");
        assert!(max_len > 0, "windows must have positive length");
        let mut state = seed;
        let windows = (0..count)
            .map(|_| {
                let shard = (splitmix64(&mut state) % u64::from(shards)) as u32;
                let start = 1 + splitmix64(&mut state) % (horizon - 1);
                let rounds = 1 + splitmix64(&mut state) % max_len;
                let draw = splitmix64(&mut state);
                let kind = if draw & 1 == 0 { OutageKind::Down } else { OutageKind::Partitioned };
                let planned = kind == OutageKind::Down && draw & 2 == 0;
                OutageWindow { shard, start, rounds, kind, planned }
            })
            .collect();
        OutagePlan { windows }
    }

    /// True when no window exists.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// How `shard` is unavailable at `round`, or `None` when it is
    /// reachable. Overlapping windows resolve with `Down` winning —
    /// a machine that is off is off, whatever else the schedule says.
    pub fn dark(&self, shard: u32, round: u64) -> Option<OutageKind> {
        let mut hit = None;
        for w in &self.windows {
            if w.covers(shard, round) {
                if w.kind == OutageKind::Down {
                    return Some(OutageKind::Down);
                }
                hit = Some(OutageKind::Partitioned);
            }
        }
        hit
    }

    /// True when a *planned* window of `shard` starts exactly at
    /// `round` and the shard is reachable in the round before — the
    /// drain signal the engine raises one round ahead of the outage.
    pub fn planned_entry(&self, shard: u32, round: u64) -> bool {
        self.windows
            .iter()
            .any(|w| w.planned && w.shard == shard && w.start == round)
    }

    /// The first round index past every window (`0` for an empty
    /// plan) — the point after which the whole fleet is healed.
    pub fn horizon(&self) -> u64 {
        self.windows
            .iter()
            .map(|w| w.start.saturating_add(w.rounds))
            .max()
            .unwrap_or(0)
    }

    /// Sanity checks against a concrete fleet size.
    ///
    /// # Panics
    ///
    /// Panics if a window names a shard outside `[0, shards)`, has
    /// zero length, or darkens the whole fleet at once forever (every
    /// plan must leave the fleet collectively reachable: at least one
    /// shard outside every round's union of windows is not required,
    /// but a window set covering all shards in the same round is
    /// almost always a configuration bug, so it is rejected).
    pub fn validate(&self, shards: u32) {
        for w in &self.windows {
            assert!(w.shard < shards, "outage window names shard {} of {shards}", w.shard);
            assert!(w.rounds > 0, "outage window must cover at least one round");
        }
        for round in 0..self.horizon() {
            let all_dark = (0..shards).all(|s| self.dark(s, round).is_some());
            assert!(!all_dark, "outage plan darkens every shard at round {round}");
        }
    }
}

#[cfg(test)]
mod outage_tests {
    use super::*;

    #[test]
    fn dark_resolves_overlap_with_down_winning() {
        let plan = OutagePlan::new(vec![
            OutageWindow { shard: 1, start: 2, rounds: 3, kind: OutageKind::Partitioned, planned: false },
            OutageWindow { shard: 1, start: 3, rounds: 1, kind: OutageKind::Down, planned: false },
        ]);
        assert_eq!(plan.dark(1, 1), None);
        assert_eq!(plan.dark(1, 2), Some(OutageKind::Partitioned));
        assert_eq!(plan.dark(1, 3), Some(OutageKind::Down));
        assert_eq!(plan.dark(1, 4), Some(OutageKind::Partitioned));
        assert_eq!(plan.dark(1, 5), None);
        assert_eq!(plan.dark(0, 3), None);
        assert_eq!(plan.horizon(), 5);
    }

    #[test]
    fn planned_entry_fires_only_at_window_start() {
        let plan = OutagePlan::new(vec![OutageWindow {
            shard: 2,
            start: 4,
            rounds: 2,
            kind: OutageKind::Down,
            planned: true,
        }]);
        assert!(plan.planned_entry(2, 4));
        assert!(!plan.planned_entry(2, 5));
        assert!(!plan.planned_entry(1, 4));
    }

    #[test]
    fn seeded_plans_are_deterministic_and_valid() {
        let a = OutagePlan::seeded(42, 8, 30, 6, 4);
        let b = OutagePlan::seeded(42, 8, 30, 6, 4);
        assert_eq!(a, b);
        assert_eq!(a.windows.len(), 6);
        a.validate(8);
        let c = OutagePlan::seeded(43, 8, 30, 6, 4);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "darkens every shard")]
    fn validate_rejects_whole_fleet_outages() {
        OutagePlan::new(vec![
            OutageWindow { shard: 0, start: 1, rounds: 1, kind: OutageKind::Down, planned: false },
            OutageWindow { shard: 1, start: 1, rounds: 1, kind: OutageKind::Partitioned, planned: false },
        ])
        .validate(2);
    }
}
