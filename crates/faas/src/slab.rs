//! Slab arenas with generational handles, plus a dense id→handle map.
//!
//! The platform's per-event hot path used to walk a
//! `BTreeMap<InstanceId, Slot>` for every lookup — `O(log n)` with a
//! pointer chase per level. A [`Slab`] stores values in one contiguous
//! `Vec` with a free list (the SNIPPETS.md free-list idiom), so a
//! lookup is a single bounds-checked index. Handles carry a
//! generation that is bumped on every remove: a stale handle to a
//! recycled slot can never alias the new occupant, which the chaos
//! tests (crash teardown, OOM kill — the schedules that churn slots
//! hardest) assert directly.
//!
//! [`IdMap`] completes the picture for the platform, whose public API
//! and wire format are keyed by monotonically assigned [`InstanceId`]s
//! (never reused): a plain `Vec<Handle>` indexed by the raw id gives
//! O(1) id→handle translation without changing id semantics.

use crate::platform::InstanceId;

/// A generational handle into a [`Slab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handle {
    idx: u32,
    gen: u32,
}

impl Handle {
    /// The never-valid handle; `IdMap` slots start here.
    pub const NULL: Handle = Handle {
        idx: u32::MAX,
        gen: 0,
    };
}

/// One slab entry: either occupied (with the generation its handle
/// must match) or a free-list link to the next vacant slot.
#[derive(Debug, Clone)]
enum Entry<T> {
    Occupied { gen: u32, value: T },
    Vacant { gen: u32, next_free: u32 },
}

/// A contiguous arena with free-list reuse and generational handles.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    /// Head of the vacant-slot chain; `u32::MAX` when none.
    free_head: u32,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Slab<T> {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            entries: Vec::new(),
            free_head: u32::MAX,
            len: 0,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, reusing a free slot if one exists.
    pub fn insert(&mut self, value: T) -> Handle {
        self.len += 1;
        if self.free_head != u32::MAX {
            let idx = self.free_head;
            // tidy:allow(panic-reachability) -- free_head is only ever set from indices this slab allocated
            let slot = &mut self.entries[idx as usize];
            let gen = match *slot {
                Entry::Vacant { gen, next_free } => {
                    self.free_head = next_free;
                    gen
                }
                // tidy:allow(panic-reachability) -- the free list links vacant entries by construction
                Entry::Occupied { .. } => unreachable!("free list points at occupied slot"),
            };
            *slot = Entry::Occupied { gen, value };
            Handle { idx, gen }
        } else {
            let idx = self.entries.len() as u32;
            self.entries.push(Entry::Occupied { gen: 0, value });
            Handle { idx, gen: 0 }
        }
    }

    /// Removes the value behind `h`, bumping the slot generation so
    /// `h` (and any copy of it) is dead forever.
    pub fn remove(&mut self, h: Handle) -> Option<T> {
        let slot = self.entries.get_mut(h.idx as usize)?;
        match slot {
            Entry::Occupied { gen, .. } if *gen == h.gen => {
                let next = std::mem::replace(
                    slot,
                    Entry::Vacant {
                        gen: h.gen.wrapping_add(1),
                        next_free: self.free_head,
                    },
                );
                self.free_head = h.idx;
                self.len -= 1;
                match next {
                    Entry::Occupied { value, .. } => Some(value),
                    // tidy:allow(panic-reachability) -- `next` was matched Occupied before the swap
                    Entry::Vacant { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// The value behind `h`, if `h` is still live.
    #[inline]
    pub fn get(&self, h: Handle) -> Option<&T> {
        match self.entries.get(h.idx as usize) {
            Some(Entry::Occupied { gen, value }) if *gen == h.gen => Some(value),
            _ => None,
        }
    }

    /// Mutable access to the value behind `h`, if still live.
    #[inline]
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        match self.entries.get_mut(h.idx as usize) {
            Some(Entry::Occupied { gen, value }) if *gen == h.gen => Some(value),
            _ => None,
        }
    }

    /// Whether `h` still points at a live value.
    pub fn contains(&self, h: Handle) -> bool {
        self.get(h).is_some()
    }

    /// Visits every live value in slab (slot) order. Slot order is an
    /// artifact of free-list history — callers that need a canonical
    /// order must sort by an embedded key.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        self.entries.iter().enumerate().filter_map(|(idx, e)| match e {
            Entry::Occupied { gen, value } => Some((
                Handle {
                    idx: idx as u32,
                    gen: *gen,
                },
                value,
            )),
            Entry::Vacant { .. } => None,
        })
    }

    /// Mutable visit of every live value in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Handle, &mut T)> {
        self.entries
            .iter_mut()
            .enumerate()
            .filter_map(|(idx, e)| match e {
                Entry::Occupied { gen, value } => Some((
                    Handle {
                        idx: idx as u32,
                        gen: *gen,
                    },
                    value,
                )),
                Entry::Vacant { .. } => None,
            })
    }
}

/// O(1) translation from the platform's monotonically assigned
/// [`InstanceId`]s to slab handles: a `Vec<Handle>` indexed by the raw
/// id, growing on demand. Ids are never reused by the platform, so a
/// cleared entry stays [`Handle::NULL`] forever.
#[derive(Debug, Clone, Default)]
pub struct IdMap {
    handles: Vec<Handle>,
}

impl IdMap {
    /// An empty map.
    pub fn new() -> IdMap {
        IdMap::default()
    }

    /// Binds `id` to `h`.
    pub fn set(&mut self, id: InstanceId, h: Handle) {
        let idx = id.0 as usize;
        if idx >= self.handles.len() {
            self.handles.resize(idx + 1, Handle::NULL);
        }
        // tidy:allow(panic-reachability) -- the resize above guarantees idx is in bounds
        self.handles[idx] = h;
    }

    /// The handle bound to `id`, if any.
    #[inline]
    pub fn get(&self, id: InstanceId) -> Option<Handle> {
        match self.handles.get(id.0 as usize) {
            Some(&h) if h != Handle::NULL => Some(h),
            _ => None,
        }
    }

    /// Unbinds `id`, returning the handle it held.
    pub fn clear(&mut self, id: InstanceId) -> Option<Handle> {
        match self.handles.get_mut(id.0 as usize) {
            Some(h) if *h != Handle::NULL => Some(std::mem::replace(h, Handle::NULL)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn stale_handle_never_aliases_reused_slot() {
        let mut slab = Slab::new();
        let a = slab.insert(1u32);
        assert_eq!(slab.remove(a), Some(1));
        // Free-list reuse: the same physical slot, a new generation.
        let b = slab.insert(2u32);
        assert_eq!(slab.get(b), Some(&2));
        assert_eq!(slab.get(a), None, "stale handle resolved after reuse");
        assert_eq!(slab.remove(a), None);
        assert!(!slab.contains(a));
        assert!(slab.contains(b));
    }

    #[test]
    fn free_list_is_lifo_and_len_tracks() {
        let mut slab = Slab::new();
        let handles: Vec<_> = (0..10).map(|i| slab.insert(i)).collect();
        for h in &handles[3..7] {
            slab.remove(*h);
        }
        assert_eq!(slab.len(), 6);
        // Reinsertions fill freed slots before growing the vec.
        let before = slab.entries.len();
        for i in 100..104 {
            slab.insert(i);
        }
        assert_eq!(slab.entries.len(), before);
        assert_eq!(slab.len(), 10);
    }

    #[test]
    fn iter_yields_live_entries_only() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        slab.insert("b");
        slab.insert("c");
        slab.remove(a);
        let live: Vec<&str> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(live, vec!["b", "c"]);
    }

    #[test]
    fn id_map_grows_and_clears() {
        let mut map = IdMap::new();
        let mut slab = Slab::new();
        let h = slab.insert(());
        map.set(InstanceId(40), h);
        assert_eq!(map.get(InstanceId(40)), Some(h));
        assert_eq!(map.get(InstanceId(7)), None);
        assert_eq!(map.get(InstanceId(10_000)), None);
        assert_eq!(map.clear(InstanceId(40)), Some(h));
        assert_eq!(map.get(InstanceId(40)), None);
        assert_eq!(map.clear(InstanceId(40)), None);
    }
}
