//! The platform controller: a deterministic discrete-event simulation
//! of an OpenWhisk-style FaaS host.
//!
//! Life of a request: it arrives, waits (if needed) for memory and CPU,
//! runs stage by stage through the function's chain — warm instances
//! are thawed, missing ones cold-booted — and each instance is *frozen*
//! again the moment its stage completes (plus an exit-time GC in the
//! eager baseline). Frozen instances live in the instance cache charged
//! at their measured USS; when a cold boot cannot fit, the platform
//! evicts the least-recently-used frozen instances. A plugged-in
//! [`MemoryManager`] (Desiccant) watches the cache and reclaims frozen
//! garbage with idle CPU instead.
//!
//! # Failure handling
//!
//! With a [`crate::FaultPlan`] installed (or when a genuine runtime
//! error surfaces — heap exhaustion, an image that cannot fit its
//! budget), the platform degrades instead of panicking:
//!
//! * failed boots, crashes and heap exhaustion destroy the instance,
//!   release its cache charge, and retry the request with capped
//!   exponential backoff under a per-request deadline;
//! * consecutive failures of one function trip its circuit breaker —
//!   requests fast-fail while it is open, and a timed half-open probe
//!   decides whether to close it again;
//! * failed reclamations burn the probe timeout's CPU, release
//!   nothing, and tell the manager to deprioritize the instance so
//!   plain LRU eviction handles the pressure;
//! * a `ReclaimDone` for an instance evicted mid-reclaim is a counted
//!   no-op, not a panic; other stale events surface as typed
//!   [`PlatformError`]s.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use faas_runtime::{Instance, Language, ReclaimReport, RuntimeImage, SharedLibs};
use simos::{SimDuration, SimTime, System};
use workloads::{FunctionSpec, FunctionState};

use crate::config::{EnvFlavor, PlatformConfig};
use crate::error::{PlatformError, PlatformResult};
use crate::fault::FaultInjector;
use crate::manager::{FrozenView, MemoryManager, ReclaimProfile};
use crate::queue::{EventQueue, QueueImpl};
use crate::slab::{IdMap, Slab};
use crate::stats::{CoreTimeKind, PlatformStats, StatsBatch};

/// Identifies an instance across its whole life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u64);

/// Driver-owned `(kind, payload)` container frames, carried through a
/// checkpoint chain and returned from [`Platform::restore_chain`].
/// Kinds start at [`Platform::FRAME_EXTRA_BASE`].
pub type ExtraFrames = Vec<(u32, Vec<u8>)>;

/// Aggregate view of one function's frozen instances on this host
/// (see [`Platform::frozen_by_function`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrozenFnSummary {
    /// Frozen instances of the function.
    pub count: u64,
    /// Their summed USS charge against the cache.
    pub charge: u64,
    /// The earliest `frozen_since` among them.
    pub oldest_frozen: SimTime,
}

/// How the platform treats GC at function exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcMode {
    /// Freeze immediately after the function exits (stock behaviour).
    Vanilla,
    /// Call the runtime's stock GC interface at every function exit
    /// (the paper's *eager* baseline, §3.2).
    Eager,
}

/// Why a request terminated unsuccessfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// Every attempted cold boot failed (injected fault, or the
    /// runtime image cannot fit the instance budget).
    BootFailure,
    /// The instance crashed mid-stage (injected fault).
    Crash,
    /// The managed heap exhausted its budget mid-stage.
    HeapExhausted,
    /// The function's circuit breaker was open.
    BreakerOpen,
    /// No retry could be scheduled within the request deadline.
    DeadlineExceeded,
    /// The estimated boot footprint exceeds the entire cache budget;
    /// no amount of eviction could admit the instance.
    TooLargeForCache,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Cold boot in progress.
    Starting,
    /// Executing a stage.
    Running,
    /// Running the exit-time eager GC.
    GcAfterExit,
    /// Being reclaimed by the memory manager.
    Reclaiming,
    /// Frozen (paused), waiting in the cache.
    Frozen,
}

struct Slot {
    /// The instance's public identity. Not serialized by the slot
    /// codec — the checkpoint writes it as the table key, exactly as
    /// the old `BTreeMap<InstanceId, Slot>` wire format did.
    id: InstanceId,
    fn_idx: usize,
    stage: u8,
    inst: Instance,
    state: FunctionState,
    status: Status,
    frozen_since: SimTime,
    last_used: SimTime,
    /// Bytes charged against the cache budget right now.
    charge: u64,
    reclaimed_since_use: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Pending,
    Completed,
    Failed(FailReason),
}

#[derive(Debug)]
struct Request {
    fn_idx: usize,
    arrival: SimTime,
    attempts: u32,
    outcome: Outcome,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival { req: usize },
    BootDone { id: InstanceId, req: usize },
    BootFailed { id: InstanceId, req: usize },
    StageDone { id: InstanceId, req: usize },
    Crash { id: InstanceId, req: usize },
    GcDone { id: InstanceId },
    ReclaimDone { id: InstanceId, cpus: f64, ok: bool },
    Retry { req: usize, stage: u8 },
    Sweep,
}

/// Work waiting for resources.
#[derive(Debug, Clone, Copy)]
struct PendingStage {
    req: usize,
    stage: u8,
}

/// What [`Platform::try_start_stage`] did with one queued stage.
enum StartOutcome {
    /// Running (or booting) — leave the queue.
    Started,
    /// Resources unavailable — stay queued.
    Queued,
    /// The request terminated or a retry event was scheduled — leave
    /// the queue.
    Resolved,
}

/// Per-function circuit breaker state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BreakerState {
    Closed,
    /// Quarantined until the given time, then half-open.
    Open(SimTime),
    /// One probe request is allowed through; its outcome decides.
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
struct Breaker {
    consecutive: u32,
    state: BreakerState,
}

impl Default for Breaker {
    fn default() -> Breaker {
        Breaker {
            consecutive: 0,
            state: BreakerState::Closed,
        }
    }
}

/// The FaaS platform.
pub struct Platform {
    config: PlatformConfig,
    catalog: Vec<FunctionSpec>,
    mode: GcMode,
    manager: Option<Box<dyn MemoryManager>>,
    sys: System,
    /// Live instances, in a slab arena: per-event lookups are one
    /// bounds-checked index via `by_id` instead of a tree walk.
    slots: Slab<Slot>,
    /// O(1) map from the monotonically assigned public ids to slab
    /// handles (ids are never reused, so entries never alias).
    by_id: IdMap,
    /// Warm pools: most-recently-frozen last.
    pools: BTreeMap<(usize, u8), Vec<InstanceId>>,
    /// Shared library registrations per language (OpenWhisk only).
    shared_libs: BTreeMap<Language, SharedLibs>,
    requests: Vec<Request>,
    events: EventQueue<Event>,
    pending: VecDeque<PendingStage>,
    now: SimTime,
    seq: u64,
    next_instance: u64,
    used_cores: f64,
    cache_used: u64,
    stats: PlatformStats,
    /// Per-drain accumulator for the event loop's counter updates,
    /// folded into `stats` whenever simulated time advances (and at
    /// every event-loop exit). Always empty outside the loop.
    batch: StatsBatch,
    sweep_scheduled: bool,
    next_seed: u64,
    /// Running estimate of a fresh instance's post-boot footprint,
    /// used for admission before the boot happens.
    boot_footprint: u64,
    /// Seeded fault stream; `None` means the fault machinery does not
    /// exist at runtime and no draw ever happens.
    injector: Option<FaultInjector>,
    /// One circuit breaker per catalog function.
    breakers: Vec<Breaker>,
    /// Events handled over the platform's whole life (checkpointed, so
    /// crash schedules measured in events survive recovery).
    events_handled: u64,
    /// Armed kill point: the event loop aborts with
    /// [`PlatformError::Killed`] before handling the event at which
    /// `events_handled` reaches this count. Deliberately *not*
    /// checkpointed — the kill models losing the process, not state.
    kill_at: Option<u64>,
    /// Instances mutated since the last checkpoint epoch — the delta
    /// checkpointer's upsert set. Tracking state only: never
    /// serialized, so full checkpoints stay byte-deterministic
    /// regardless of checkpoint history.
    dirty_slots: BTreeSet<InstanceId>,
    /// Instances destroyed since the last checkpoint epoch — the delta
    /// checkpointer's erase set. Tracking state only, like
    /// `dirty_slots`.
    dead_slots: BTreeSet<InstanceId>,
}

impl Platform {
    /// Creates a platform over `catalog` with an optional memory
    /// manager.
    pub fn new(
        config: PlatformConfig,
        catalog: Vec<FunctionSpec>,
        mode: GcMode,
        manager: Option<Box<dyn MemoryManager>>,
    ) -> Platform {
        config.validate();
        let mut sys = System::new();
        let mut shared_libs = BTreeMap::new();
        if config.env == EnvFlavor::OpenWhisk {
            for lang in [Language::Java, Language::JavaScript] {
                let image = RuntimeImage::openwhisk(lang);
                shared_libs.insert(lang, image.register_files(&mut sys));
            }
        }
        let breakers = vec![Breaker::default(); catalog.len()];
        Platform {
            config,
            catalog,
            mode,
            manager,
            sys,
            slots: Slab::new(),
            by_id: IdMap::new(),
            pools: BTreeMap::new(),
            shared_libs,
            requests: Vec::new(),
            events: EventQueue::default(),
            pending: VecDeque::new(),
            now: SimTime::ZERO,
            seq: 0,
            next_instance: 0,
            used_cores: 0.0,
            cache_used: 0,
            stats: PlatformStats::default(),
            batch: StatsBatch::default(),
            sweep_scheduled: false,
            next_seed: config.seed,
            boot_footprint: 64 << 20,
            injector: config.faults.map(FaultInjector::new),
            breakers,
            events_handled: 0,
            kill_at: None,
            dirty_slots: BTreeSet::new(),
            dead_slots: BTreeSet::new(),
        }
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Index of a catalog function by name.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.catalog.iter().position(|f| f.name == name)
    }

    /// The function catalog.
    pub fn catalog(&self) -> &[FunctionSpec] {
        &self.catalog
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Collected statistics.
    pub fn stats(&self) -> &PlatformStats {
        &self.stats
    }

    /// Resets the statistics window (after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats.reset(self.now);
    }

    /// Bytes currently charged against the instance cache.
    pub fn cache_used(&self) -> u64 {
        self.cache_used
    }

    /// Number of live instances (any status).
    pub fn instance_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of frozen instances.
    pub fn frozen_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|(_, s)| s.status == Status::Frozen)
            .count()
    }

    /// Per-function summary of the frozen (warm, thaw-able) cache:
    /// `fn_idx -> (instance count, total USS charge, oldest freeze
    /// time)`, in catalog-index order.
    ///
    /// This is the warm-set signal a cluster front-end routes on
    /// (cold-start-aware placement) and the pressure signal migration
    /// offers are built from; it deliberately exposes no instance
    /// identities, so placement can never reach into shard-local
    /// state.
    pub fn frozen_by_function(&self) -> BTreeMap<usize, FrozenFnSummary> {
        let mut out: BTreeMap<usize, FrozenFnSummary> = BTreeMap::new();
        for (_, s) in self.slots.iter().filter(|(_, s)| s.status == Status::Frozen) {
            let e = out.entry(s.fn_idx).or_insert(FrozenFnSummary {
                count: 0,
                charge: 0,
                oldest_frozen: s.frozen_since,
            });
            e.count += 1;
            e.charge += s.charge;
            e.oldest_frozen = e.oldest_frozen.min(s.frozen_since);
        }
        out
    }

    /// The slot of instance `id`, if it is still alive.
    #[inline]
    fn slot(&self, id: InstanceId) -> Option<&Slot> {
        self.by_id.get(id).and_then(|h| self.slots.get(h))
    }

    /// The catalog spec for `fn_idx`. Function indices are positions in
    /// the catalog the platform was built with; every externally
    /// supplied index (trace replay, checkpoint restore) is validated
    /// against `catalog.len()` before it reaches the tables, so the
    /// lookup cannot miss. Funneling every catalog access through this
    /// accessor keeps that invariant in one place.
    #[inline]
    fn spec(&self, fn_idx: usize) -> FunctionSpec {
        // tidy:allow(panic-reachability) -- fn_idx is validated against the catalog at admission/restore
        self.catalog[fn_idx]
    }

    /// The request record for `req`. Request ids are indices into
    /// `requests` that [`Platform::submit`] itself allocated by pushing
    /// the record, and restore validates every persisted id, so the
    /// lookup cannot miss.
    #[inline]
    fn request(&self, req: usize) -> &Request {
        // tidy:allow(panic-reachability) -- req ids are indices submit() itself allocated
        &self.requests[req]
    }

    #[inline]
    fn request_mut(&mut self, req: usize) -> &mut Request {
        // tidy:allow(panic-reachability) -- req ids are indices submit() itself allocated
        &mut self.requests[req]
    }

    /// The circuit breaker for `fn_idx` (`breakers` is sized to the
    /// catalog at construction and at restore).
    #[inline]
    fn breaker_mut(&mut self, fn_idx: usize) -> &mut Breaker {
        // tidy:allow(panic-reachability) -- breakers is sized to the catalog it is indexed by
        &mut self.breakers[fn_idx]
    }

    /// Records that `id`'s slot is about to be mutated, so the next
    /// delta checkpoint re-serializes it. Call before *every*
    /// `slots.get_mut` — an unmarked mutation silently diverges the
    /// delta fold from a full checkpoint (the round-trip tests pin
    /// byte-identity exactly to catch that).
    #[inline]
    fn mark_slot_dirty(&mut self, id: InstanceId) {
        if self.by_id.get(id).is_some() {
            self.dirty_slots.insert(id);
        }
    }

    /// Which event-queue representation the platform runs on.
    pub fn queue_impl(&self) -> QueueImpl {
        self.events.kind()
    }

    /// Switches the event queue to `kind`, rebuilding it from the
    /// canonical `(time, seq)` order. The pop order (and therefore
    /// every simulation outcome and checkpoint byte) is identical on
    /// both representations; the reference heap exists as the oracle
    /// and perf baseline.
    pub fn set_queue_impl(&mut self, kind: QueueImpl) -> PlatformResult<()> {
        if kind == self.events.kind() {
            return Ok(());
        }
        let entries: Vec<(SimTime, u64, Event)> = self
            .events
            .sorted_entries()
            .into_iter()
            .map(|(at, seq, ev)| (at, seq, *ev))
            .collect();
        self.events = EventQueue::from_sorted(kind, entries)
            .map_err(snapshot::SnapError::Corrupt)?;
        Ok(())
    }

    /// Verifies the instance table's internal coherence: every live
    /// slab entry is reachable through `by_id` under its own id, ids
    /// are below the allocation cursor, and the id map holds no
    /// dangling bindings. Used by the slab-stability chaos tests and
    /// available to recovery drivers.
    pub fn check_instance_table(&self) -> PlatformResult<()> {
        use snapshot::SnapError;
        let mut live = 0usize;
        for (h, s) in self.slots.iter() {
            live += 1;
            if s.id.0 >= self.next_instance {
                return Err(SnapError::Corrupt("instance id >= next_instance").into());
            }
            if self.by_id.get(s.id) != Some(h) {
                return Err(SnapError::Corrupt("slot not reachable under its own id").into());
            }
        }
        if live != self.slots.len() {
            return Err(SnapError::Corrupt("slab length out of sync").into());
        }
        for (&(fn_idx, stage), ids) in &self.pools {
            for id in ids {
                let ok = self
                    .slot(*id)
                    .is_some_and(|s| s.fn_idx == fn_idx && s.stage == stage);
                if !ok {
                    return Err(SnapError::Corrupt("pool entry has no matching slot").into());
                }
            }
        }
        Ok(())
    }

    /// Requests neither completed nor failed yet. Counted from the
    /// request table, so it is immune to statistics-window resets.
    pub fn in_flight(&self) -> u64 {
        self.requests
            .iter()
            .filter(|r| r.outcome == Outcome::Pending)
            .count() as u64
    }

    /// Lifetime request totals `(submitted, completed, failed)` over
    /// the platform's whole run, immune to statistics-window resets.
    pub fn request_totals(&self) -> (u64, u64, u64) {
        let mut totals = (self.requests.len() as u64, 0, 0);
        for r in &self.requests {
            match r.outcome {
                Outcome::Pending => {}
                Outcome::Completed => totals.1 += 1,
                Outcome::Failed(_) => totals.2 += 1,
            }
        }
        totals
    }

    /// Failure reasons of every failed request, in submission order.
    pub fn failure_reasons(&self) -> Vec<FailReason> {
        self.requests
            .iter()
            .filter_map(|r| match r.outcome {
                Outcome::Failed(why) => Some(why),
                _ => None,
            })
            .collect()
    }

    /// Whether `fn_idx`'s circuit breaker is currently open.
    pub fn breaker_open(&self, fn_idx: usize) -> bool {
        matches!(self.breakers[fn_idx].state, BreakerState::Open(_))
    }

    /// Direct access to the simulated OS (for measurements in tests
    /// and harnesses).
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Submits a request for `fn_idx` at time `t` (must not be in the
    /// past).
    ///
    /// # Panics
    ///
    /// Panics if `fn_idx` is out of range or `t` is before `now`.
    pub fn submit(&mut self, t: SimTime, fn_idx: usize) {
        assert!(fn_idx < self.catalog.len(), "unknown function index");
        assert!(t >= self.now, "cannot submit in the past");
        let req = self.requests.len();
        self.requests.push(Request {
            fn_idx,
            arrival: t,
            attempts: 0,
            outcome: Outcome::Pending,
        });
        self.stats.submitted += 1;
        self.schedule(t, Event::Arrival { req });
    }

    fn schedule(&mut self, at: SimTime, ev: Event) {
        self.seq += 1;
        self.events.push(at, self.seq, ev);
    }

    /// Runs the simulation until `t_end` (events after it stay queued).
    ///
    /// # Panics
    ///
    /// Panics on a [`PlatformError`]; use [`Platform::try_run_until`]
    /// to handle it instead.
    pub fn run_until(&mut self, t_end: SimTime) {
        if let Err(e) = self.try_run_until(t_end) {
            // tidy:allow(panic-reachability) -- documented panicking wrapper over try_run_until
            panic!("platform invariant violated: {e}");
        }
    }

    /// Like [`Platform::run_until`], but surfaces event-loop errors as
    /// typed [`PlatformError`]s instead of panicking.
    pub fn try_run_until(&mut self, t_end: SimTime) -> PlatformResult<()> {
        if self.manager.is_some() && !self.sweep_scheduled {
            self.sweep_scheduled = true;
            let at = self.now + self.config.sweep_interval;
            self.schedule(at, Event::Sweep);
        }
        let result = self.event_loop(t_end);
        // Every exit — clean, kill, or error — leaves the counter
        // batch empty, so external observers (and checkpoints) always
        // see coherent statistics.
        self.batch.flush(&mut self.stats);
        result
    }

    fn event_loop(&mut self, t_end: SimTime) -> PlatformResult<()> {
        while let Some((at, _)) = self.events.peek_key() {
            if at > t_end {
                break;
            }
            if self.kill_at.is_some_and(|k| self.events_handled >= k) {
                return Err(PlatformError::Killed {
                    events_handled: self.events_handled,
                });
            }
            let Some((at, _, ev)) = self.events.pop() else {
                break;
            };
            debug_assert!(at >= self.now, "event from the past");
            if at > self.now {
                // Time advances: fold the per-drain counter batch into
                // the statistics before the new timestamp's events run.
                self.batch.flush(&mut self.stats);
                self.now = at;
            }
            self.events_handled += 1;
            self.handle(ev)?;
        }
        self.now = self.now.max(t_end);
        Ok(())
    }

    /// Destroys every instance and verifies the accounting returns to
    /// zero: no cache charge and no simulated process may survive.
    pub fn shutdown(&mut self) -> PlatformResult<()> {
        let mut ids: Vec<InstanceId> = self.slots.iter().map(|(_, s)| s.id).collect();
        ids.sort_unstable();
        for id in ids {
            self.destroy_instance(id);
        }
        self.pools.clear();
        if self.cache_used != 0 {
            return Err(PlatformError::CacheResidue {
                bytes: self.cache_used,
            });
        }
        let count = self.sys.process_count();
        if count != 0 {
            return Err(PlatformError::ProcessResidue { count });
        }
        Ok(())
    }

    fn handle(&mut self, ev: Event) -> PlatformResult<()> {
        match ev {
            Event::Arrival { req } => {
                self.pending.push_back(PendingStage { req, stage: 0 });
                self.drain_pending();
                Ok(())
            }
            Event::BootDone { id, req } => self.on_boot_done(id, req),
            Event::BootFailed { id, req } => self.on_boot_failed(id, req),
            Event::StageDone { id, req } => self.on_stage_done(id, req),
            Event::Crash { id, req } => self.on_crash(id, req),
            Event::GcDone { id } => {
                self.release_cores(self.config.cpu_share);
                self.finish_freeze(id)?;
                self.drain_pending();
                Ok(())
            }
            Event::ReclaimDone { id, cpus, ok } => {
                self.release_cores(cpus);
                self.mark_slot_dirty(id);
                match self.by_id.get(id).and_then(|h| self.slots.get_mut(h)) {
                    Some(slot) if slot.status == Status::Reclaiming => {
                        slot.status = Status::Frozen;
                        if ok {
                            let new_charge = slot.inst.uss(&self.sys);
                            self.update_charge(id, new_charge)?;
                            self.maybe_oom_kill();
                        }
                        // A failed reclamation released nothing; the
                        // freeze-time charge stands.
                    }
                    // Thawed mid-reclaim: execution owns the slot now.
                    Some(_) => {}
                    // Evicted mid-reclaim: a tolerated stale event.
                    None => self.batch.stale_events += 1,
                }
                self.drain_pending();
                Ok(())
            }
            Event::Retry { req, stage } => {
                self.pending.push_back(PendingStage { req, stage });
                self.drain_pending();
                Ok(())
            }
            Event::Sweep => {
                self.run_sweep();
                let at = self.now + self.config.sweep_interval;
                self.schedule(at, Event::Sweep);
                Ok(())
            }
        }
    }

    fn release_cores(&mut self, cpus: f64) {
        self.used_cores = (self.used_cores - cpus).max(0.0);
    }

    fn update_charge(&mut self, id: InstanceId, new_charge: u64) -> PlatformResult<()> {
        self.mark_slot_dirty(id);
        let slot = self
            .by_id
            .get(id)
            .and_then(|h| self.slots.get_mut(h))
            .ok_or(PlatformError::StaleInstance {
                id,
                context: "update-charge",
            })?;
        self.cache_used = self.cache_used - slot.charge + new_charge;
        slot.charge = new_charge;
        Ok(())
    }

    /// Tries to start every queued stage; removes those that started
    /// or terminated.
    fn drain_pending(&mut self) {
        let mut remaining = VecDeque::new();
        while let Some(work) = self.pending.pop_front() {
            if let StartOutcome::Queued = self.try_start_stage(work) {
                remaining.push_back(work);
            }
        }
        self.pending = remaining;
    }

    /// Attempts to start `work` now.
    fn try_start_stage(&mut self, work: PendingStage) -> StartOutcome {
        let req = work.req;
        let fn_idx = self.request(req).fn_idx;
        if !self.breaker_allows(fn_idx) {
            self.batch.breaker_fast_fails += 1;
            self.fail_request(req, FailReason::BreakerOpen);
            return StartOutcome::Resolved;
        }
        let key = (fn_idx, work.stage);
        // Warm path: most recently used frozen instance of this stage.
        if self.pools.get(&key).is_some_and(|p| !p.is_empty()) {
            if self.used_cores + self.config.cpu_share > self.config.cores {
                return StartOutcome::Queued;
            }
            if let Some(id) = self.pools.get_mut(&key).and_then(Vec::pop) {
                let thaw_failed = self.injector.as_mut().is_some_and(|i| i.thaw_fails());
                if thaw_failed {
                    // The frozen instance is lost; fall through to a
                    // cold boot. Transparent to the request (no retry
                    // burned).
                    self.batch.thaw_failures += 1;
                    self.destroy_instance(id);
                } else {
                    self.mark_slot_dirty(id);
                    if let Some(slot) = self.by_id.get(id).and_then(|h| self.slots.get_mut(h)) {
                        // Instances are charged at measured USS; the thawed
                        // instance keeps its freeze-time charge and is
                        // re-measured when it freezes again.
                        slot.status = Status::Running;
                        slot.last_used = self.now;
                        self.used_cores += self.config.cpu_share;
                        self.batch.warm_starts += 1;
                        if self.start_execution(id, req, self.config.thaw).is_err() {
                            // A pooled instance that cannot start is lost
                            // capacity, not a crash: give the share back,
                            // drop the instance, and let the request retry
                            // from the queue.
                            self.used_cores -= self.config.cpu_share;
                            self.batch.warm_starts -= 1;
                            self.batch.stale_events += 1;
                            self.destroy_instance(id);
                            return StartOutcome::Queued;
                        }
                        return StartOutcome::Started;
                    }
                }
                // A pooled id without a slot is an upstream accounting
                // bug, but a recoverable one: cold-boot instead.
            }
        }
        // Cold path: boot a new instance (needs a full core plus room
        // for the estimated post-boot footprint).
        if self.boot_footprint > self.config.cache_budget {
            // Evicting the whole cache still could not admit this
            // boot; reject outright instead of evict-all-and-loop.
            self.batch.rejected_too_large += 1;
            self.fail_request(req, FailReason::TooLargeForCache);
            return StartOutcome::Resolved;
        }
        if self.used_cores + 1.0 > self.config.cores {
            return StartOutcome::Queued;
        }
        if !self.make_room(self.boot_footprint, None) {
            return StartOutcome::Queued;
        }
        let spec = self.spec(fn_idx);
        let image = match self.config.env {
            EnvFlavor::OpenWhisk => RuntimeImage::openwhisk(spec.language),
            EnvFlavor::Lambda => RuntimeImage::lambda(spec.language),
        };
        let libs = match self.config.env {
            EnvFlavor::OpenWhisk => self
                .shared_libs
                .get(&spec.language)
                .cloned()
                .unwrap_or(SharedLibs { files: Vec::new() }),
            EnvFlavor::Lambda => image.register_files(&mut self.sys),
        };
        let inst = match Instance::launch(
            &mut self.sys,
            &image,
            &libs,
            self.config.instance_budget,
            self.config.cpu_share,
        ) {
            Ok(inst) => inst,
            Err(_) => {
                // The runtime image does not fit the instance budget:
                // a boot failure (every retry will fail the same way,
                // so the breaker quarantines the function quickly).
                self.batch.boot_failures += 1;
                self.record_breaker_failure(fn_idx);
                self.fail_or_retry(req, work.stage, FailReason::BootFailure);
                return StartOutcome::Resolved;
            }
        };
        let boot_time = self.config.container_create + inst.startup_time();
        self.next_seed = self.next_seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let state = FunctionState::new(work.stage, self.next_seed);
        let id = InstanceId(self.next_instance);
        self.next_instance += 1;
        // Charge the freshly measured footprint and fold it into the
        // admission estimate (exponential moving average).
        let footprint = inst.uss(&self.sys);
        self.boot_footprint = (self.boot_footprint * 3 + footprint) / 4;
        let h = self.slots.insert(Slot {
            id,
            fn_idx,
            stage: work.stage,
            inst,
            state,
            status: Status::Starting,
            frozen_since: self.now,
            last_used: self.now,
            charge: footprint,
            reclaimed_since_use: false,
        });
        self.by_id.set(id, h);
        self.dirty_slots.insert(id);
        self.cache_used += footprint;
        self.used_cores += 1.0;
        match self.injector.as_mut().and_then(|i| i.boot_fails()) {
            Some(frac) => {
                let fail_at = boot_time.mul_f64(frac);
                self.stats
                    .record_core_time(CoreTimeKind::Boot, fail_at, 1.0);
                self.schedule(self.now + fail_at, Event::BootFailed { id, req });
            }
            None => {
                self.batch.cold_boots += 1;
                self.stats
                    .record_core_time(CoreTimeKind::Boot, boot_time, 1.0);
                self.schedule(self.now + boot_time, Event::BootDone { id, req });
            }
        }
        StartOutcome::Started
    }

    /// Frees at least `needed` bytes of cache headroom by evicting LRU
    /// frozen instances (skipping `exempt`). Returns false if not
    /// enough can be freed.
    fn make_room(&mut self, needed: u64, exempt: Option<InstanceId>) -> bool {
        if needed == 0 {
            return true;
        }
        let budget = self.config.cache_budget;
        if self.cache_used + needed <= budget {
            return true;
        }
        loop {
            if self.cache_used + needed <= budget {
                return true;
            }
            // Tie-break equal `last_used` by lowest id — the order the
            // old id-sorted table produced implicitly.
            let victim = self
                .slots
                .iter()
                .filter(|(_, s)| {
                    (s.status == Status::Frozen || s.status == Status::Reclaiming)
                        && Some(s.id) != exempt
                })
                .min_by_key(|(_, s)| (s.last_used, s.id))
                .map(|(_, s)| s.id);
            match victim {
                Some(vid) => self.evict(vid),
                None => return false,
            }
        }
    }

    /// Evicts `id` under memory pressure (counts and notifies, then
    /// destroys).
    fn evict(&mut self, id: InstanceId) {
        self.batch.evictions += 1;
        if let Some(slot) = self.slot(id) {
            let name = self.spec(slot.fn_idx).name;
            if let Some(m) = self.manager.as_mut() {
                m.note_eviction(self.now, name);
            }
        }
        self.destroy_instance(id);
        // Note: a pending ReclaimDone event for this id becomes stale;
        // its core release still happens when it fires.
    }

    /// Destroys `id` unconditionally: removes it from its pool,
    /// releases its cache charge, tells the manager, and kills the
    /// simulated process. Returns the USS the kill freed.
    fn destroy_instance(&mut self, id: InstanceId) -> u64 {
        let Some(slot) = self.by_id.clear(id).and_then(|h| self.slots.remove(h)) else {
            return 0;
        };
        self.dirty_slots.remove(&id);
        self.dead_slots.insert(id);
        self.cache_used -= slot.charge;
        if let Some(pool) = self.pools.get_mut(&(slot.fn_idx, slot.stage)) {
            pool.retain(|p| *p != id);
        }
        if let Some(m) = self.manager.as_mut() {
            m.note_destroyed(id);
        }
        slot.inst.kill(&mut self.sys)
    }

    /// Under cache overcommit, the injected cgroup OOM killer may take
    /// out the largest frozen instance (mirroring the kernel's badness
    /// pick inside a memory cgroup).
    fn maybe_oom_kill(&mut self) {
        if self.cache_used <= self.config.cache_budget {
            return;
        }
        let Some(inj) = self.injector.as_mut() else {
            return;
        };
        if !inj.oom_strikes() {
            return;
        }
        let victim = self
            .slots
            .iter()
            .filter(|(_, s)| s.status == Status::Frozen)
            .max_by_key(|(_, s)| (s.charge, s.id))
            .map(|(_, s)| s.id);
        if let Some(vid) = victim {
            self.batch.oom_kills += 1;
            if let Some(slot) = self.slot(vid) {
                let name = self.spec(slot.fn_idx).name;
                if let Some(m) = self.manager.as_mut() {
                    m.note_eviction(self.now, name);
                }
            }
            self.destroy_instance(vid);
        }
    }

    fn on_boot_done(&mut self, id: InstanceId, req: usize) -> PlatformResult<()> {
        // The boot held a full core; execution holds only the share.
        self.release_cores(1.0);
        if self.used_cores + self.config.cpu_share <= self.config.cores {
            self.used_cores += self.config.cpu_share;
            self.mark_slot_dirty(id);
            let slot = self
                .by_id
                .get(id)
                .and_then(|h| self.slots.get_mut(h))
                .ok_or(PlatformError::StaleInstance {
                    id,
                    context: "boot-done",
                })?;
            slot.status = Status::Running;
            slot.last_used = self.now;
            self.start_execution(id, req, SimDuration::ZERO)?;
        } else {
            // Extremely rare: the share does not fit right after the
            // boot released a whole core. Retry via the queue by
            // freezing the fresh instance unused.
            let stage = self
                .slot(id)
                .ok_or(PlatformError::StaleInstance {
                    id,
                    context: "boot-done",
                })?
                .stage;
            self.finish_freeze(id)?;
            self.pending.push_front(PendingStage { req, stage });
        }
        self.drain_pending();
        Ok(())
    }

    /// An injected cold-boot failure struck partway through startup.
    fn on_boot_failed(&mut self, id: InstanceId, req: usize) -> PlatformResult<()> {
        self.release_cores(1.0);
        let (fn_idx, stage) = self
            .slot(id)
            .map(|s| (s.fn_idx, s.stage))
            .ok_or(PlatformError::StaleInstance {
                id,
                context: "boot-failed",
            })?;
        self.destroy_instance(id);
        self.batch.boot_failures += 1;
        self.record_breaker_failure(fn_idx);
        self.fail_or_retry(req, stage, FailReason::BootFailure);
        self.drain_pending();
        Ok(())
    }

    /// An injected crash struck partway through a stage.
    fn on_crash(&mut self, id: InstanceId, req: usize) -> PlatformResult<()> {
        self.release_cores(self.config.cpu_share);
        let slot = self.slot(id).ok_or(PlatformError::StaleInstance {
            id,
            context: "crash",
        })?;
        let (fn_idx, stage) = (slot.fn_idx, slot.stage);
        self.destroy_instance(id);
        self.batch.crashes += 1;
        self.record_breaker_failure(fn_idx);
        self.fail_or_retry(req, stage, FailReason::Crash);
        self.drain_pending();
        Ok(())
    }

    /// Invokes the stage kernel on `id` and schedules its completion
    /// (or its crash, injected or genuine).
    fn start_execution(&mut self, id: InstanceId, req: usize, extra: SimDuration) -> PlatformResult<()> {
        self.mark_slot_dirty(id);
        let (fn_idx, stage) = {
            let slot = self.slot(id).ok_or(PlatformError::StaleInstance {
                id,
                context: "start-execution",
            })?;
            (slot.fn_idx, slot.stage)
        };
        let spec = self.spec(fn_idx);
        let slot = self
            .by_id
            .get(id)
            .and_then(|h| self.slots.get_mut(h))
            .ok_or(PlatformError::StaleInstance {
                id,
                context: "start-execution",
            })?;
        // Intermediates from the previous request were transferred.
        slot.state.complete_transfer(slot.inst.heap_mut().graph_mut());
        let state = &mut slot.state;
        let result = slot.inst.invoke(&mut self.sys, self.now, &spec.exec, |ctx| {
            state.invoke(&spec, ctx);
        });
        match result {
            Ok(report) => {
                let wall = report.wall_time + extra + slot.state.io_wait(&spec);
                match self.injector.as_mut().and_then(|i| i.stage_crashes()) {
                    Some(frac) => {
                        let crash_at = wall.mul_f64(frac);
                        self.stats
                            .record_core_time(CoreTimeKind::Exec, crash_at, self.config.cpu_share);
                        self.schedule(self.now + crash_at, Event::Crash { id, req });
                    }
                    None => {
                        self.stats
                            .record_core_time(CoreTimeKind::Exec, wall, self.config.cpu_share);
                        self.schedule(self.now + wall, Event::StageDone { id, req });
                    }
                }
            }
            Err(_) => {
                // The managed heap exhausted its budget mid-invoke:
                // the runtime dies (an OOM crash), the request
                // retries elsewhere.
                self.release_cores(self.config.cpu_share);
                self.destroy_instance(id);
                self.batch.crashes += 1;
                self.batch.heap_exhaustions += 1;
                self.record_breaker_failure(fn_idx);
                self.fail_or_retry(req, stage, FailReason::HeapExhausted);
            }
        }
        Ok(())
    }

    fn on_stage_done(&mut self, id: InstanceId, req: usize) -> PlatformResult<()> {
        let (fn_idx, stage) = {
            let slot = self.slot(id).ok_or(PlatformError::StaleInstance {
                id,
                context: "stage-done",
            })?;
            (slot.fn_idx, slot.stage)
        };
        self.record_breaker_success(fn_idx);
        let chain_len = self.spec(fn_idx).chain_len;
        // Advance the request.
        if stage + 1 < chain_len {
            self.pending.push_back(PendingStage {
                req,
                stage: stage + 1,
            });
        } else {
            let now = self.now;
            let r = self.request_mut(req);
            debug_assert!(r.outcome == Outcome::Pending);
            r.outcome = Outcome::Completed;
            let latency = now.since(r.arrival);
            self.stats.latency.record(latency);
            self.batch.completed += 1;
        }
        // Exit-time behaviour.
        match self.mode {
            GcMode::Vanilla => {
                self.release_cores(self.config.cpu_share);
                self.finish_freeze(id)?;
            }
            GcMode::Eager => {
                self.mark_slot_dirty(id);
                let slot = self
                    .by_id
                    .get(id)
                    .and_then(|h| self.slots.get_mut(h))
                    .ok_or(PlatformError::StaleInstance {
                        id,
                        context: "stage-done",
                    })?;
                slot.status = Status::GcAfterExit;
                match slot.inst.eager_gc(&mut self.sys) {
                    Ok(g) => {
                        self.stats
                            .record_core_time(CoreTimeKind::Gc, g, self.config.cpu_share);
                        self.schedule(self.now + g, Event::GcDone { id });
                    }
                    Err(_) => {
                        // Exit-time GC wedged the runtime. The request
                        // already advanced; only the instance is lost.
                        self.release_cores(self.config.cpu_share);
                        self.batch.crashes += 1;
                        self.batch.heap_exhaustions += 1;
                        self.destroy_instance(id);
                    }
                }
            }
        }
        self.drain_pending();
        Ok(())
    }

    /// Freezes `id`: completes intermediate transfer semantics, returns
    /// it to its warm pool, and re-charges it at measured USS.
    fn finish_freeze(&mut self, id: InstanceId) -> PlatformResult<()> {
        self.mark_slot_dirty(id);
        let slot = self
            .by_id
            .get(id)
            .and_then(|h| self.slots.get_mut(h))
            .ok_or(PlatformError::StaleInstance {
                id,
                context: "finish-freeze",
            })?;
        slot.status = Status::Frozen;
        slot.frozen_since = self.now;
        slot.reclaimed_since_use = false;
        let key = (slot.fn_idx, slot.stage);
        let uss = slot.inst.uss(&self.sys);
        self.update_charge(id, uss)?;
        self.pools.entry(key).or_default().push(id);
        self.maybe_oom_kill();
        Ok(())
    }

    /// Terminally fails `req`.
    fn fail_request(&mut self, req: usize, why: FailReason) {
        let r = self.request_mut(req);
        debug_assert!(r.outcome == Outcome::Pending);
        r.outcome = Outcome::Failed(why);
        self.batch.failed += 1;
    }

    /// Retries `req` at `stage` with capped exponential backoff, or
    /// fails it if the retry budget or deadline is exhausted.
    fn fail_or_retry(&mut self, req: usize, stage: u8, why: FailReason) {
        let attempts = self.request(req).attempts;
        if attempts >= self.config.max_retries {
            self.batch.retry_gave_up += 1;
            self.fail_request(req, why);
            return;
        }
        let shift = attempts.min(20);
        let backoff = (self.config.retry_backoff * (1u64 << shift))
            .min(self.config.retry_backoff_cap);
        let at = self.now + backoff;
        if at > self.request(req).arrival + self.config.request_deadline {
            self.fail_request(req, FailReason::DeadlineExceeded);
            return;
        }
        self.request_mut(req).attempts += 1;
        self.batch.retries += 1;
        self.schedule(at, Event::Retry { req, stage });
    }

    /// True if `fn_idx` may run a request now; flips an expired open
    /// breaker into its half-open probe window.
    fn breaker_allows(&mut self, fn_idx: usize) -> bool {
        if self.config.breaker_threshold == 0 {
            return true;
        }
        let now = self.now;
        let b = self.breaker_mut(fn_idx);
        match b.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open(until) if now >= until => {
                b.state = BreakerState::HalfOpen;
                true
            }
            BreakerState::Open(_) => false,
        }
    }

    fn record_breaker_failure(&mut self, fn_idx: usize) {
        let threshold = self.config.breaker_threshold;
        if threshold == 0 {
            return;
        }
        let until = self.now + self.config.breaker_cooldown;
        let b = self.breaker_mut(fn_idx);
        b.consecutive += 1;
        let trips = match b.state {
            // A failed half-open probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => b.consecutive >= threshold,
            BreakerState::Open(_) => false,
        };
        if trips {
            b.state = BreakerState::Open(until);
            self.batch.breaker_trips += 1;
        }
    }

    fn record_breaker_success(&mut self, fn_idx: usize) {
        if self.config.breaker_threshold == 0 {
            return;
        }
        let b = self.breaker_mut(fn_idx);
        b.consecutive = 0;
        b.state = BreakerState::Closed;
    }

    /// One memory-manager sweep: collect frozen views, ask the manager,
    /// start reclamations on idle CPU.
    fn run_sweep(&mut self) {
        let Some(manager) = self.manager.as_mut() else {
            return;
        };
        let mut views: Vec<FrozenView> = self
            .slots
            .iter()
            .filter(|(_, s)| s.status == Status::Frozen)
            .map(|(_, s)| FrozenView {
                id: s.id,
                // tidy:allow(panic-reachability) -- fn_idx is validated against the catalog at admission/restore
                function: self.catalog[s.fn_idx].name,
                stage: s.stage,
                frozen_since: s.frozen_since,
                heap_resident: s.inst.heap().resident_heap_bytes(&self.sys),
                charge: s.charge,
                reclaimed: s.reclaimed_since_use,
            })
            .collect();
        // Canonical id order: the slab iterates in slot order, but the
        // manager contract (and the old id-sorted table) presents
        // views lowest-id first.
        views.sort_by_key(|v| v.id);
        let picks = manager.select_reclaims(
            self.now,
            self.config.cache_budget,
            self.cache_used,
            &views,
        );
        let keep_weak = manager.keep_weak();
        let unmap = manager.unmap_libs();
        for id in picks {
            let idle = self.config.cores - self.used_cores;
            // Reclamation only uses idle CPU (§4.5.2).
            if idle < 0.25 {
                break;
            }
            let cpus = idle.min(1.0);
            if self.slot(id).map(|s| s.status) != Some(Status::Frozen) {
                continue;
            }
            let injected_failure = self.injector.as_mut().is_some_and(|i| i.reclaim_fails());
            self.mark_slot_dirty(id);
            let Some(slot) = self.by_id.get(id).and_then(|h| self.slots.get_mut(h)) else {
                continue;
            };
            slot.status = Status::Reclaiming;
            slot.reclaimed_since_use = true;
            let fn_idx = slot.fn_idx;
            if injected_failure {
                self.fail_reclaim(id, fn_idx, cpus);
                continue;
            }
            let report: ReclaimReport = match slot.inst.reclaim(&mut self.sys, self.now, keep_weak)
            {
                Ok(r) => r,
                Err(_) => {
                    self.fail_reclaim(id, fn_idx, cpus);
                    continue;
                }
            };
            let mut released = report.released_bytes;
            if unmap {
                // A failed unmap degrades to "nothing extra released".
                released += slot.inst.unmap_private_libs(&mut self.sys).unwrap_or(0);
            }
            let wall = report.wall_time.mul_f64(1.0 / cpus);
            self.used_cores += cpus;
            self.batch.reclamations += 1;
            self.batch.reclaimed_bytes += released;
            self.stats
                .record_core_time(CoreTimeKind::Reclaim, wall, cpus);
            let name = self.spec(fn_idx).name;
            let profile = ReclaimProfile {
                live_bytes: report.live_bytes,
                released_bytes: released,
                // Accumulated CPU time = wall × cpus = the full-CPU
                // work of the reclamation.
                cpu_time: report.wall_time,
            };
            if let Some(m) = self.manager.as_mut() {
                m.note_reclaimed(self.now, id, name, profile);
            }
            self.schedule(self.now + wall, Event::ReclaimDone { id, cpus, ok: true });
        }
    }

    /// A failed reclamation: burn the probe timeout's CPU, release
    /// nothing, and tell the manager to deprioritize the instance.
    fn fail_reclaim(&mut self, id: InstanceId, fn_idx: usize, cpus: f64) {
        let wall = self.config.reclaim_timeout;
        self.used_cores += cpus;
        self.batch.reclaim_failures += 1;
        self.stats.record_core_time(CoreTimeKind::Reclaim, wall, cpus);
        let name = self.spec(fn_idx).name;
        if let Some(m) = self.manager.as_mut() {
            m.note_reclaim_failed(self.now, id, name);
        }
        self.schedule(self.now + wall, Event::ReclaimDone { id, cpus, ok: false });
    }

    /// USS of every live instance in id order, for harness
    /// measurements.
    pub fn instance_uss(&self) -> Vec<(InstanceId, u64)> {
        let mut out: Vec<(InstanceId, u64)> = self
            .slots
            .iter()
            .map(|(_, s)| (s.id, s.inst.uss(&self.sys)))
            .collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// Events handled since the platform was created (survives
    /// checkpoint/restore).
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Arms a kill point: the event loop will abort with
    /// [`PlatformError::Killed`] before handling the event at which
    /// the lifetime event count reaches `at_events`. Used by the
    /// kill–recover chaos harness; a kill point at or below the current
    /// count fires on the very next event.
    pub fn arm_kill(&mut self, at_events: u64) {
        self.kill_at = Some(at_events);
    }

    /// Disarms any armed kill point.
    pub fn disarm_kill(&mut self) {
        self.kill_at = None;
    }

    /// A configuration fingerprint: checkpoints only restore into a
    /// platform built with the same config, catalog, GC mode, and
    /// manager. FNV-1a over every config field, keeping restore from
    /// silently continuing a different simulation.
    fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut put = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        let c = &self.config;
        put(c.cache_budget);
        put(c.instance_budget);
        put(c.cpu_share.to_bits());
        put(c.cores.to_bits());
        put(c.container_create.as_nanos());
        put(c.thaw.as_nanos());
        put(match c.env {
            EnvFlavor::OpenWhisk => 0,
            EnvFlavor::Lambda => 1,
        });
        put(c.sweep_interval.as_nanos());
        put(c.seed);
        put(u64::from(c.max_retries));
        put(c.retry_backoff.as_nanos());
        put(c.retry_backoff_cap.as_nanos());
        put(c.request_deadline.as_nanos());
        put(u64::from(c.breaker_threshold));
        put(c.breaker_cooldown.as_nanos());
        put(c.reclaim_timeout.as_nanos());
        match &c.faults {
            None => put(0),
            Some(p) => {
                put(1);
                put(p.seed);
                put(p.boot_fail.to_bits());
                put(p.crash.to_bits());
                put(p.thaw_fail.to_bits());
                put(p.reclaim_fail.to_bits());
                put(p.oom_kill.to_bits());
            }
        }
        put(match self.mode {
            GcMode::Vanilla => 0,
            GcMode::Eager => 1,
        });
        let mut put_str = |s: &str| {
            for &b in s.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for spec in &self.catalog {
            put_str(spec.name);
            put_str(spec.language.name());
        }
        match self.manager.as_ref() {
            Some(m) => put_str(m.name()),
            None => put_str("-"),
        }
        h
    }

    /// Serializes the complete simulation state — OS, every instance
    /// (heap object graphs included), request table, event queue,
    /// statistics, fault-stream cursor, breakers, and the manager's
    /// state — into a versioned, self-validating binary snapshot.
    ///
    /// Equal states produce byte-identical snapshots: the event queue
    /// is written in canonical `(time, sequence)` order, and every
    /// float is written bit-exactly.
    pub fn checkpoint(&self) -> Vec<u8> {
        use snapshot::Snapshot;
        debug_assert!(
            self.batch.is_empty(),
            "counter batch must be flushed before a checkpoint"
        );
        let mut w = snapshot::Writer::new();
        snapshot::write_header(&mut w, SNAP_MAGIC, SNAP_VERSION);
        self.fingerprint().snap(&mut w);
        self.sys.snap(&mut w);
        // The instance table, in the old `BTreeMap<InstanceId, Slot>`
        // wire format: length, then (id, slot) pairs lowest-id first.
        let mut live: Vec<&Slot> = self.slots.iter().map(|(_, s)| s).collect();
        live.sort_unstable_by_key(|s| s.id);
        w.usize(live.len());
        for s in live {
            s.id.snap(&mut w);
            s.snap(&mut w);
        }
        self.pools.snap(&mut w);
        self.shared_libs.snap(&mut w);
        self.requests.snap(&mut w);
        // The event queue, in canonical (time, seq) order — identical
        // bytes on either queue representation.
        w.usize(self.events.len());
        for (at, seq, ev) in self.events.sorted_entries() {
            at.snap(&mut w);
            seq.snap(&mut w);
            ev.snap(&mut w);
        }
        self.pending.snap(&mut w);
        self.now.snap(&mut w);
        self.seq.snap(&mut w);
        self.next_instance.snap(&mut w);
        self.used_cores.snap(&mut w);
        self.cache_used.snap(&mut w);
        self.stats.snap(&mut w);
        self.sweep_scheduled.snap(&mut w);
        self.next_seed.snap(&mut w);
        self.boot_footprint.snap(&mut w);
        self.injector.snap(&mut w);
        self.breakers.snap(&mut w);
        self.events_handled.snap(&mut w);
        let blob = match self.manager.as_ref() {
            Some(m) => m.snapshot_state(),
            None => Vec::new(),
        };
        w.blob(&blob);
        w.into_bytes()
    }

    /// Restores a [`Platform::checkpoint`] into this platform, which
    /// must have been constructed with the same configuration, catalog,
    /// GC mode, and manager (enforced by fingerprint). All-or-nothing:
    /// on any decode error the platform is left untouched. An armed
    /// kill point stays armed — the recovery driver owns it.
    pub fn restore(&mut self, bytes: &[u8]) -> PlatformResult<()> {
        use snapshot::{SnapError, Snapshot};
        let mut r = snapshot::Reader::new(bytes);
        snapshot::read_header(&mut r, SNAP_MAGIC, SNAP_VERSION)?;
        let fp = u64::restore(&mut r)?;
        if fp != self.fingerprint() {
            return Err(SnapError::mismatch(
                "platform configuration fingerprint",
                format!("{:016x}", self.fingerprint()),
                format!("{fp:016x}"),
            )
            .into());
        }
        let sys = System::restore(&mut r)?;
        let n_slots = r.seq_len()?;
        let mut slot_rows: Vec<Slot> = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let id = InstanceId::restore(&mut r)?;
            let mut slot = Slot::restore(&mut r)?;
            slot.id = id;
            slot_rows.push(slot);
        }
        let pools: BTreeMap<(usize, u8), Vec<InstanceId>> = BTreeMap::restore(&mut r)?;
        let shared_libs: BTreeMap<Language, SharedLibs> = BTreeMap::restore(&mut r)?;
        let requests: Vec<Request> = Vec::restore(&mut r)?;
        let n_events = r.seq_len()?;
        let mut event_rows: Vec<(SimTime, u64, Event)> = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let at = SimTime::restore(&mut r)?;
            let seq = u64::restore(&mut r)?;
            let ev = Event::restore(&mut r)?;
            event_rows.push((at, seq, ev));
        }
        let pending: VecDeque<PendingStage> = VecDeque::restore(&mut r)?;
        let now = SimTime::restore(&mut r)?;
        let seq = u64::restore(&mut r)?;
        let next_instance = u64::restore(&mut r)?;
        let used_cores = f64::restore(&mut r)?;
        let cache_used = u64::restore(&mut r)?;
        let stats = PlatformStats::restore(&mut r)?;
        let sweep_scheduled = bool::restore(&mut r)?;
        let next_seed = u64::restore(&mut r)?;
        let boot_footprint = u64::restore(&mut r)?;
        let injector: Option<FaultInjector> = Option::restore(&mut r)?;
        let breakers: Vec<Breaker> = Vec::restore(&mut r)?;
        let events_handled = u64::restore(&mut r)?;
        let manager_blob = r.blob()?.to_vec();
        r.finish()?;

        // Cross-checks before committing anything.
        if breakers.len() != self.catalog.len() {
            return Err(SnapError::Corrupt("breaker table size != catalog").into());
        }
        if self.config.faults.is_some() != injector.is_some() {
            return Err(SnapError::Corrupt("fault-injector presence flipped").into());
        }
        if !used_cores.is_finite() || used_cores < 0.0 {
            return Err(SnapError::Corrupt("used_cores out of range").into());
        }
        for req in &requests {
            if req.fn_idx >= self.catalog.len() {
                return Err(SnapError::Corrupt("request names unknown function").into());
            }
        }
        let mut charge_sum = 0u64;
        for (i, slot) in slot_rows.iter().enumerate() {
            if i.checked_sub(1).and_then(|j| slot_rows.get(j)).is_some_and(|p| p.id >= slot.id) {
                return Err(SnapError::Corrupt("instance table not id-sorted").into());
            }
            if slot.id.0 >= next_instance {
                return Err(SnapError::Corrupt("instance id >= next_instance").into());
            }
            if self
                .catalog
                .get(slot.fn_idx)
                .is_none_or(|spec| slot.stage >= spec.chain_len)
            {
                return Err(SnapError::Corrupt("slot names unknown function/stage").into());
            }
            charge_sum = charge_sum.saturating_add(slot.charge);
        }
        if charge_sum != cache_used {
            return Err(SnapError::Corrupt("cache charge does not sum").into());
        }
        let mut slots: Slab<Slot> = Slab::new();
        let mut by_id = IdMap::new();
        for slot in slot_rows {
            let id = slot.id;
            let h = slots.insert(slot);
            by_id.set(id, h);
        }
        for (&(fn_idx, stage), ids) in &pools {
            for id in ids {
                let ok = by_id
                    .get(*id)
                    .and_then(|h| slots.get(h))
                    .is_some_and(|s| s.fn_idx == fn_idx && s.stage == stage);
                if !ok {
                    return Err(SnapError::Corrupt("pool entry has no matching slot").into());
                }
            }
        }
        let ev_ok = |req: usize| req < requests.len();
        for (_, ev_seq, ev) in &event_rows {
            if *ev_seq > seq {
                return Err(SnapError::Corrupt("event seq above cursor").into());
            }
            let ok = match ev {
                Event::Arrival { req }
                | Event::BootDone { req, .. }
                | Event::BootFailed { req, .. }
                | Event::StageDone { req, .. }
                | Event::Crash { req, .. }
                | Event::Retry { req, .. } => ev_ok(*req),
                Event::GcDone { .. } | Event::ReclaimDone { .. } | Event::Sweep => true,
            };
            if !ok {
                return Err(SnapError::Corrupt("event names unknown request").into());
            }
        }
        let events = EventQueue::from_sorted(self.events.kind(), event_rows)
            .map_err(SnapError::Corrupt)?;
        for p in &pending {
            if !ev_ok(p.req) {
                return Err(SnapError::Corrupt("pending stage names unknown request").into());
            }
        }
        match self.manager.as_mut() {
            Some(m) => m.restore_state(&manager_blob)?,
            None if !manager_blob.is_empty() => {
                return Err(SnapError::mismatch(
                    "manager state blob",
                    "empty (no manager installed)",
                    format!("{} bytes", manager_blob.len()),
                )
                .into());
            }
            None => {}
        }

        debug_assert!(
            self.batch.is_empty(),
            "restore with unflushed stats batch"
        );
        self.sys = sys;
        self.slots = slots;
        self.by_id = by_id;
        self.pools = pools;
        self.shared_libs = shared_libs;
        self.requests = requests;
        self.events = events;
        self.pending = pending;
        self.now = now;
        self.seq = seq;
        self.next_instance = next_instance;
        self.used_cores = used_cores;
        self.cache_used = cache_used;
        self.stats = stats;
        self.sweep_scheduled = sweep_scheduled;
        self.next_seed = next_seed;
        self.boot_footprint = boot_footprint;
        self.injector = injector;
        self.breakers = breakers;
        self.events_handled = events_handled;
        // A restore is a checkpoint cut: the restored state *is* the
        // new epoch's baseline (the restored `sys` starts clean too),
        // so a later delta may chain to the restored checkpoint.
        self.dirty_slots.clear();
        self.dead_slots.clear();
        Ok(())
    }

    /// Frame kind: the configuration fingerprint (every container).
    pub const FRAME_META: u32 = 1;
    /// Frame kind: the always-full control section (every container).
    pub const FRAME_CONTROL: u32 = 2;
    /// Frame kind: one full address space, keyed by pid (bases only).
    pub const FRAME_PROC: u32 = 3;
    /// Frame kind: pids destroyed since the parent (deltas only).
    pub const FRAME_PROC_TOMB: u32 = 4;
    /// Frame kind: one address-space delta, keyed by pid (deltas only).
    pub const FRAME_PROC_DELTA: u32 = 5;
    /// Frame kind: one full instance slot, keyed by instance id.
    pub const FRAME_SLOT: u32 = 6;
    /// Frame kind: instance ids destroyed since the parent.
    pub const FRAME_SLOT_TOMB: u32 = 7;
    /// Frame kinds at or above this are opaque to the platform:
    /// drivers may attach their own frames and get them back from
    /// [`Platform::restore_chain`].
    pub const FRAME_EXTRA_BASE: u32 = 0x100;

    /// Serializes the canonical control section of an incremental
    /// checkpoint: everything a delta always carries in full — the file
    /// registry, the pid cursor, and the whole platform tail (pools,
    /// requests, events, scalars, statistics, fault cursor, breakers,
    /// manager blob). Only address spaces and instance slots — the two
    /// large, sparsely-mutated tables — are delta-encoded.
    fn control_section(&self) -> Vec<u8> {
        use snapshot::Snapshot;
        let mut files = snapshot::Writer::new();
        self.sys.files().snap(&mut files);
        let mut tail = snapshot::Writer::new();
        self.pools.snap(&mut tail);
        self.shared_libs.snap(&mut tail);
        self.requests.snap(&mut tail);
        tail.usize(self.events.len());
        for (at, seq, ev) in self.events.sorted_entries() {
            at.snap(&mut tail);
            seq.snap(&mut tail);
            ev.snap(&mut tail);
        }
        self.pending.snap(&mut tail);
        self.now.snap(&mut tail);
        self.seq.snap(&mut tail);
        self.next_instance.snap(&mut tail);
        self.used_cores.snap(&mut tail);
        self.cache_used.snap(&mut tail);
        self.stats.snap(&mut tail);
        self.sweep_scheduled.snap(&mut tail);
        self.next_seed.snap(&mut tail);
        self.boot_footprint.snap(&mut tail);
        self.injector.snap(&mut tail);
        self.breakers.snap(&mut tail);
        self.events_handled.snap(&mut tail);
        let blob = match self.manager.as_ref() {
            Some(m) => m.snapshot_state(),
            None => Vec::new(),
        };
        tail.blob(&blob);
        let mut w = snapshot::Writer::new();
        w.blob(&files.into_bytes());
        w.u32(self.sys.next_pid());
        w.blob(&tail.into_bytes());
        w.into_bytes()
    }

    /// Marks the current state as checkpointed: every dirty-tracking
    /// structure resets, so the next [`Platform::checkpoint_delta`]
    /// carries only mutations from this point on.
    fn clear_epoch_tracking(&mut self) {
        self.sys.clear_epoch_dirty();
        self.dirty_slots.clear();
        self.dead_slots.clear();
    }

    /// A *base* checkpoint in the framed container format: the complete
    /// state as one `META` + `CONTROL` + per-process `PROC` + per-slot
    /// `SLOT` frame set, sealed by a commit record carrying `epoch`.
    /// `extra` frames (driver state; kinds at or above
    /// [`Platform::FRAME_EXTRA_BASE`]) ride along verbatim and come
    /// back from [`Platform::restore_chain`].
    ///
    /// Unlike [`Platform::checkpoint`] this is a checkpoint *cut*: it
    /// clears the dirty-epoch tracking so a following
    /// [`Platform::checkpoint_delta`] is relative to it.
    pub fn checkpoint_base(&mut self, epoch: u64, extra: &[(u32, Vec<u8>)]) -> Vec<u8> {
        use snapshot::frame::ContainerWriter;
        use snapshot::Snapshot;
        debug_assert!(
            self.batch.is_empty(),
            "counter batch must be flushed before a checkpoint"
        );
        let mut cw = ContainerWriter::new();
        let mut meta = snapshot::Writer::new();
        self.fingerprint().snap(&mut meta);
        cw.frame(Self::FRAME_META, &meta.into_bytes());
        cw.frame(Self::FRAME_CONTROL, &self.control_section());
        for pid in self.sys.pids().collect::<Vec<_>>() {
            let Ok(space) = self.sys.space(pid) else {
                continue;
            };
            let mut w = snapshot::Writer::new();
            pid.snap(&mut w);
            space.snap(&mut w);
            cw.frame(Self::FRAME_PROC, &w.into_bytes());
        }
        let mut live: Vec<&Slot> = self.slots.iter().map(|(_, s)| s).collect();
        live.sort_unstable_by_key(|s| s.id);
        for s in live {
            let mut w = snapshot::Writer::new();
            s.id.snap(&mut w);
            s.snap(&mut w);
            cw.frame(Self::FRAME_SLOT, &w.into_bytes());
        }
        for (kind, payload) in extra {
            cw.frame(*kind, payload);
        }
        self.clear_epoch_tracking();
        cw.commit(epoch, None)
    }

    /// A *delta* checkpoint against the checkpoint at `parent`: the
    /// control section in full (it is small and densely mutated), but
    /// only the address spaces and instance slots mutated since the
    /// last checkpoint cut — O(dirty), not O(state). Tombstone frames
    /// carry the processes and instances destroyed since.
    pub fn checkpoint_delta(&mut self, epoch: u64, parent: u64, extra: &[(u32, Vec<u8>)]) -> Vec<u8> {
        use snapshot::frame::ContainerWriter;
        use snapshot::Snapshot;
        debug_assert!(
            self.batch.is_empty(),
            "counter batch must be flushed before a checkpoint"
        );
        let mut cw = ContainerWriter::new();
        let mut meta = snapshot::Writer::new();
        self.fingerprint().snap(&mut meta);
        cw.frame(Self::FRAME_META, &meta.into_bytes());
        cw.frame(Self::FRAME_CONTROL, &self.control_section());
        // Tombstones before upserts: ids are never reused, so the
        // order only matters for readability of the container.
        if !self.sys.removed_pids().is_empty() {
            let mut w = snapshot::Writer::new();
            w.usize(self.sys.removed_pids().len());
            for pid in self.sys.removed_pids() {
                pid.snap(&mut w);
            }
            cw.frame(Self::FRAME_PROC_TOMB, &w.into_bytes());
        }
        for (pid, space) in self.sys.epoch_dirty_spaces() {
            let mut w = snapshot::Writer::new();
            pid.snap(&mut w);
            space.snap_delta(&mut w);
            cw.frame(Self::FRAME_PROC_DELTA, &w.into_bytes());
        }
        if !self.dead_slots.is_empty() {
            let mut w = snapshot::Writer::new();
            w.usize(self.dead_slots.len());
            for id in &self.dead_slots {
                id.snap(&mut w);
            }
            cw.frame(Self::FRAME_SLOT_TOMB, &w.into_bytes());
        }
        for id in self.dirty_slots.clone() {
            // Dirt recorded for an instance that died later in the
            // epoch is stale — the tombstone covers it.
            let Some(slot) = self.slot(id) else {
                continue;
            };
            let mut w = snapshot::Writer::new();
            id.snap(&mut w);
            slot.snap(&mut w);
            cw.frame(Self::FRAME_SLOT, &w.into_bytes());
        }
        for (kind, payload) in extra {
            cw.frame(*kind, payload);
        }
        self.clear_epoch_tracking();
        cw.commit(epoch, Some(parent))
    }

    /// Restores a base-plus-deltas chain (oldest first, base at the
    /// head) produced by [`Platform::checkpoint_base`] and
    /// [`Platform::checkpoint_delta`].
    ///
    /// The fold reassembles the *exact canonical bytes* a full
    /// [`Platform::checkpoint`] of the final state would produce —
    /// replaying tombstones and upserts over the base's per-process
    /// and per-slot sections — and then restores those bytes, so every
    /// cross-validation of [`Platform::restore`] (fingerprint, charge
    /// sums, pool coherence, event/request bounds) applies to the
    /// folded state too. On success the restored instances are
    /// additionally checked against the USS ≤ PSS ≤ RSS ordering.
    ///
    /// Returns the epoch of the chain head and the head's extra
    /// (driver) frames.
    pub fn restore_chain(&mut self, chain: &[Vec<u8>]) -> PlatformResult<(u64, ExtraFrames)> {
        use simos::AddressSpace;
        use snapshot::frame::Container;
        use snapshot::{SnapError, Snapshot};
        if chain.is_empty() {
            return Err(SnapError::Corrupt("empty checkpoint chain").into());
        }
        let containers: Vec<Container> = chain
            .iter()
            .map(|bytes| Container::open(bytes))
            .collect::<Result<_, _>>()?;
        let head = containers.first().ok_or(SnapError::Corrupt("empty checkpoint chain"))?;
        if let Some(p) = head.parent {
            return Err(SnapError::mismatch(
                "chain head",
                "a base checkpoint (no parent)",
                format!("a delta chained to epoch {p}"),
            )
            .into());
        }
        for pair in containers.windows(2) {
            let [prev, next] = pair else { continue };
            if next.parent != Some(prev.epoch) {
                return Err(SnapError::mismatch(
                    "delta parent epoch",
                    prev.epoch,
                    format!("{:?}", next.parent),
                )
                .into());
            }
        }
        let mut fingerprint: Option<u64> = None;
        let mut control: Option<Vec<u8>> = None;
        let mut spaces: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
        let mut slot_blobs: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut extra: Vec<(u32, Vec<u8>)> = Vec::new();
        for container in &containers {
            extra.clear();
            for (kind, payload) in &container.frames {
                let mut r = snapshot::Reader::new(payload);
                match *kind {
                    Self::FRAME_META => {
                        let fp = u64::restore(&mut r)?;
                        r.finish()?;
                        if fingerprint.is_some_and(|have| have != fp) {
                            return Err(SnapError::Corrupt(
                                "chain mixes differently-configured checkpoints",
                            )
                            .into());
                        }
                        fingerprint = Some(fp);
                    }
                    Self::FRAME_CONTROL => control = Some(payload.clone()),
                    Self::FRAME_PROC => {
                        let pid = simos::Pid::restore(&mut r)?;
                        let body = r.take(r.remaining())?.to_vec();
                        spaces.insert(pid.0, body);
                    }
                    Self::FRAME_PROC_TOMB => {
                        let n = r.seq_len()?;
                        for _ in 0..n {
                            let pid = simos::Pid::restore(&mut r)?;
                            spaces.remove(&pid.0);
                        }
                        r.finish()?;
                    }
                    Self::FRAME_PROC_DELTA => {
                        let pid = simos::Pid::restore(&mut r)?;
                        let base = match spaces.get(&pid.0) {
                            Some(bytes) => {
                                let mut br = snapshot::Reader::new(bytes);
                                let space = AddressSpace::restore(&mut br)?;
                                br.finish()?;
                                Some(space)
                            }
                            None => None,
                        };
                        let folded = AddressSpace::restore_delta(base, &mut r)?;
                        r.finish()?;
                        let mut w = snapshot::Writer::new();
                        folded.snap(&mut w);
                        spaces.insert(pid.0, w.into_bytes());
                    }
                    Self::FRAME_SLOT => {
                        let id = InstanceId::restore(&mut r)?;
                        let body = r.take(r.remaining())?.to_vec();
                        slot_blobs.insert(id.0, body);
                    }
                    Self::FRAME_SLOT_TOMB => {
                        let n = r.seq_len()?;
                        for _ in 0..n {
                            let id = InstanceId::restore(&mut r)?;
                            slot_blobs.remove(&id.0);
                        }
                        r.finish()?;
                    }
                    other if other >= Self::FRAME_EXTRA_BASE => {
                        extra.push((other, payload.clone()));
                    }
                    _ => {
                        return Err(SnapError::Corrupt(
                            "unknown platform frame kind in checkpoint chain",
                        )
                        .into());
                    }
                }
            }
        }
        let fingerprint =
            fingerprint.ok_or(SnapError::Corrupt("chain carries no fingerprint frame"))?;
        let control = control.ok_or(SnapError::Corrupt("chain carries no control frame"))?;
        let mut cr = snapshot::Reader::new(&control);
        let files = cr.blob()?.to_vec();
        let next_pid = cr.u32()?;
        let tail = cr.blob()?.to_vec();
        cr.finish()?;
        // Reassemble the canonical full-checkpoint byte stream; the
        // layout here mirrors `Platform::checkpoint` and the `System` /
        // `AddressSpace` snapshot impls in lockstep.
        let mut w = snapshot::Writer::new();
        snapshot::write_header(&mut w, SNAP_MAGIC, SNAP_VERSION);
        fingerprint.snap(&mut w);
        w.raw(&files);
        w.usize(spaces.len());
        for (pid, bytes) in &spaces {
            w.u32(*pid);
            w.raw(bytes);
        }
        w.u32(next_pid);
        w.usize(slot_blobs.len());
        for (id, bytes) in &slot_blobs {
            w.u64(*id);
            w.raw(bytes);
        }
        w.raw(&tail);
        self.restore(&w.into_bytes())?;
        // Memory-accounting cross-check on the restored state: the
        // machine invariant USS ≤ PSS ≤ RSS must hold per instance. A
        // violation means the fold produced an incoherent state (and
        // can only follow a bug, not a storage fault — those never get
        // past `Container::open`).
        for (_, s) in self.slots.iter() {
            let uss = s.inst.uss(&self.sys);
            let pss = s.inst.pss(&self.sys);
            let rss = s.inst.rss(&self.sys);
            if !(uss as f64 <= pss + 1e-6 && pss <= rss as f64 + 1e-6) {
                return Err(SnapError::mismatch(
                    "restored instance memory ordering",
                    "USS <= PSS <= RSS",
                    format!("uss={uss} pss={pss} rss={rss}"),
                )
                .into());
            }
        }
        let head_epoch = containers.last().map_or(0, |c| c.epoch);
        Ok((head_epoch, extra))
    }
}

/// Magic of a [`Platform::checkpoint`] blob (`"FPCK"`).
const SNAP_MAGIC: u32 = 0x4650_434b;
/// Version of the checkpoint format. Bump on any layout change: old
/// snapshots are rejected, never misread.
const SNAP_VERSION: u32 = 1;

mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for InstanceId {
        fn snap(&self, w: &mut Writer) {
            let Self(raw) = self;
            raw.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<InstanceId, SnapError> {
            Ok(InstanceId(u64::restore(r)?))
        }
    }

    impl Snapshot for Status {
        fn snap(&self, w: &mut Writer) {
            let tag: u8 = match self {
                Status::Starting => 0,
                Status::Running => 1,
                Status::GcAfterExit => 2,
                Status::Reclaiming => 3,
                Status::Frozen => 4,
            };
            tag.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<Status, SnapError> {
            match u8::restore(r)? {
                0 => Ok(Status::Starting),
                1 => Ok(Status::Running),
                2 => Ok(Status::GcAfterExit),
                3 => Ok(Status::Reclaiming),
                4 => Ok(Status::Frozen),
                _ => Err(SnapError::Corrupt("unknown Status tag")),
            }
        }
    }

    impl Snapshot for Slot {
        // `id` is deliberately not serialized here: the instance table
        // writes it as the row key, exactly where the old
        // `BTreeMap<InstanceId, Slot>` wire format put it. The restore
        // side writes a placeholder the caller overwrites with the key.
        fn snap(&self, w: &mut Writer) {
            let Self {
                id: _,
                fn_idx,
                stage,
                inst,
                state,
                status,
                frozen_since,
                last_used,
                charge,
                reclaimed_since_use,
            } = self;
            fn_idx.snap(w);
            stage.snap(w);
            inst.snap(w);
            state.snap(w);
            status.snap(w);
            frozen_since.snap(w);
            last_used.snap(w);
            charge.snap(w);
            reclaimed_since_use.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<Slot, SnapError> {
            Ok(Slot {
                id: InstanceId(u64::MAX),
                fn_idx: usize::restore(r)?,
                stage: u8::restore(r)?,
                inst: Instance::restore(r)?,
                state: FunctionState::restore(r)?,
                status: Status::restore(r)?,
                frozen_since: SimTime::restore(r)?,
                last_used: SimTime::restore(r)?,
                charge: u64::restore(r)?,
                reclaimed_since_use: bool::restore(r)?,
            })
        }
    }

    impl Snapshot for FailReason {
        fn snap(&self, w: &mut Writer) {
            let tag: u8 = match self {
                FailReason::BootFailure => 0,
                FailReason::Crash => 1,
                FailReason::HeapExhausted => 2,
                FailReason::BreakerOpen => 3,
                FailReason::DeadlineExceeded => 4,
                FailReason::TooLargeForCache => 5,
            };
            tag.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<FailReason, SnapError> {
            match u8::restore(r)? {
                0 => Ok(FailReason::BootFailure),
                1 => Ok(FailReason::Crash),
                2 => Ok(FailReason::HeapExhausted),
                3 => Ok(FailReason::BreakerOpen),
                4 => Ok(FailReason::DeadlineExceeded),
                5 => Ok(FailReason::TooLargeForCache),
                _ => Err(SnapError::Corrupt("unknown FailReason tag")),
            }
        }
    }

    impl Snapshot for Outcome {
        fn snap(&self, w: &mut Writer) {
            match self {
                Outcome::Pending => 0u8.snap(w),
                Outcome::Completed => 1u8.snap(w),
                Outcome::Failed(why) => {
                    2u8.snap(w);
                    why.snap(w);
                }
            }
        }

        fn restore(r: &mut Reader<'_>) -> Result<Outcome, SnapError> {
            match u8::restore(r)? {
                0 => Ok(Outcome::Pending),
                1 => Ok(Outcome::Completed),
                2 => Ok(Outcome::Failed(FailReason::restore(r)?)),
                _ => Err(SnapError::Corrupt("unknown Outcome tag")),
            }
        }
    }

    impl Snapshot for Request {
        fn snap(&self, w: &mut Writer) {
            let Self {
                fn_idx,
                arrival,
                attempts,
                outcome,
            } = self;
            fn_idx.snap(w);
            arrival.snap(w);
            attempts.snap(w);
            outcome.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<Request, SnapError> {
            Ok(Request {
                fn_idx: usize::restore(r)?,
                arrival: SimTime::restore(r)?,
                attempts: u32::restore(r)?,
                outcome: Outcome::restore(r)?,
            })
        }
    }

    impl Snapshot for Event {
        fn snap(&self, w: &mut Writer) {
            match self {
                Event::Arrival { req } => {
                    0u8.snap(w);
                    req.snap(w);
                }
                Event::BootDone { id, req } => {
                    1u8.snap(w);
                    id.snap(w);
                    req.snap(w);
                }
                Event::BootFailed { id, req } => {
                    2u8.snap(w);
                    id.snap(w);
                    req.snap(w);
                }
                Event::StageDone { id, req } => {
                    3u8.snap(w);
                    id.snap(w);
                    req.snap(w);
                }
                Event::Crash { id, req } => {
                    4u8.snap(w);
                    id.snap(w);
                    req.snap(w);
                }
                Event::GcDone { id } => {
                    5u8.snap(w);
                    id.snap(w);
                }
                Event::ReclaimDone { id, cpus, ok } => {
                    6u8.snap(w);
                    id.snap(w);
                    cpus.snap(w);
                    ok.snap(w);
                }
                Event::Retry { req, stage } => {
                    7u8.snap(w);
                    req.snap(w);
                    stage.snap(w);
                }
                Event::Sweep => 8u8.snap(w),
            }
        }

        fn restore(r: &mut Reader<'_>) -> Result<Event, SnapError> {
            match u8::restore(r)? {
                0 => Ok(Event::Arrival {
                    req: usize::restore(r)?,
                }),
                1 => Ok(Event::BootDone {
                    id: InstanceId::restore(r)?,
                    req: usize::restore(r)?,
                }),
                2 => Ok(Event::BootFailed {
                    id: InstanceId::restore(r)?,
                    req: usize::restore(r)?,
                }),
                3 => Ok(Event::StageDone {
                    id: InstanceId::restore(r)?,
                    req: usize::restore(r)?,
                }),
                4 => Ok(Event::Crash {
                    id: InstanceId::restore(r)?,
                    req: usize::restore(r)?,
                }),
                5 => Ok(Event::GcDone {
                    id: InstanceId::restore(r)?,
                }),
                6 => Ok(Event::ReclaimDone {
                    id: InstanceId::restore(r)?,
                    cpus: f64::restore(r)?,
                    ok: bool::restore(r)?,
                }),
                7 => Ok(Event::Retry {
                    req: usize::restore(r)?,
                    stage: u8::restore(r)?,
                }),
                8 => Ok(Event::Sweep),
                _ => Err(SnapError::Corrupt("unknown Event tag")),
            }
        }
    }

    impl Snapshot for PendingStage {
        fn snap(&self, w: &mut Writer) {
            let Self { req, stage } = self;
            req.snap(w);
            stage.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<PendingStage, SnapError> {
            Ok(PendingStage {
                req: usize::restore(r)?,
                stage: u8::restore(r)?,
            })
        }
    }

    impl Snapshot for BreakerState {
        fn snap(&self, w: &mut Writer) {
            match self {
                BreakerState::Closed => 0u8.snap(w),
                BreakerState::Open(until) => {
                    1u8.snap(w);
                    until.snap(w);
                }
                BreakerState::HalfOpen => 2u8.snap(w),
            }
        }

        fn restore(r: &mut Reader<'_>) -> Result<BreakerState, SnapError> {
            match u8::restore(r)? {
                0 => Ok(BreakerState::Closed),
                1 => Ok(BreakerState::Open(SimTime::restore(r)?)),
                2 => Ok(BreakerState::HalfOpen),
                _ => Err(SnapError::Corrupt("unknown BreakerState tag")),
            }
        }
    }

    impl Snapshot for Breaker {
        fn snap(&self, w: &mut Writer) {
            let Self { consecutive, state } = self;
            consecutive.snap(w);
            state.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<Breaker, SnapError> {
            Ok(Breaker {
                consecutive: u32::restore(r)?,
                state: BreakerState::restore(r)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn small_config() -> PlatformConfig {
        PlatformConfig {
            cache_budget: 1 << 30,
            cores: 4.0,
            ..PlatformConfig::default()
        }
    }

    fn submit_n(p: &mut Platform, name: &str, n: u64, gap_ms: u64) {
        let idx = p.function_index(name).unwrap();
        for i in 0..n {
            p.submit(SimTime(i * gap_ms * 1_000_000), idx);
        }
    }

    #[test]
    fn single_request_cold_boots_and_completes() {
        let mut p = Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        submit_n(&mut p, "file-hash", 1, 1);
        p.run_until(SimTime(10_000_000_000));
        assert_eq!(p.stats().completed, 1);
        assert_eq!(p.stats().cold_boots, 1);
        assert_eq!(p.stats().warm_starts, 0);
        assert_eq!(p.frozen_count(), 1);
        // Latency includes the cold boot.
        let mut stats = p.stats.clone();
        assert!(stats.latency.percentile(1.0).unwrap() > SimDuration::from_millis(500));
    }

    #[test]
    fn second_request_warm_starts_and_is_faster() {
        let mut p = Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        submit_n(&mut p, "file-hash", 2, 5000);
        p.run_until(SimTime(60_000_000_000));
        assert_eq!(p.stats().completed, 2);
        assert_eq!(p.stats().cold_boots, 1);
        assert_eq!(p.stats().warm_starts, 1);
        let mut stats = p.stats.clone();
        let p0 = stats.latency.percentile(0.0).unwrap();
        let p100 = stats.latency.percentile(1.0).unwrap();
        assert!(p0 < p100, "warm start not faster: {p0} vs {p100}");
    }

    #[test]
    fn chains_run_all_stages() {
        let mut p = Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        submit_n(&mut p, "mapreduce", 1, 1);
        p.run_until(SimTime(30_000_000_000));
        assert_eq!(p.stats().completed, 1);
        // One instance per stage.
        assert_eq!(p.stats().cold_boots, 2);
        assert_eq!(p.frozen_count(), 2);
    }

    #[test]
    fn memory_pressure_causes_evictions() {
        let mut config = small_config();
        // Tight cache: frozen footprints accumulate past it quickly.
        config.cache_budget = 256 << 20;
        let mut p = Platform::new(config, workloads::catalog(), GcMode::Vanilla, None);
        // Sequentially touch many distinct functions so frozen
        // instances pile up.
        let names = [
            "file-hash", "sort", "fft", "matrix", "image-resize", "factor", "pi", "unionfind",
            "dynamic-html", "fibonacci", "web-server", "filesystem",
        ];
        for (i, name) in names.iter().enumerate() {
            let idx = p.function_index(name).unwrap();
            p.submit(SimTime(i as u64 * 20_000_000_000), idx);
        }
        p.run_until(SimTime(names.len() as u64 * 20_000_000_000 + 20_000_000_000));
        assert_eq!(p.stats().completed, names.len() as u64);
        assert!(p.stats().evictions >= 1, "no eviction under pressure");
    }

    #[test]
    fn cpu_exhaustion_queues_requests() {
        let mut config = small_config();
        config.cores = 1.0;
        let mut p = Platform::new(config, workloads::catalog(), GcMode::Vanilla, None);
        // A burst of simultaneous requests: cold boots take a full
        // core each, so they serialize.
        submit_n(&mut p, "pi", 6, 0);
        p.run_until(SimTime(120_000_000_000));
        assert_eq!(p.stats().completed, 6);
        let mut stats = p.stats.clone();
        let spread = stats.latency.percentile(1.0).unwrap().as_secs_f64()
            / stats.latency.percentile(0.0).unwrap().as_secs_f64();
        assert!(spread > 1.5, "no queueing spread: {spread}");
    }

    #[test]
    fn eager_mode_runs_gc_every_exit() {
        let mut p = Platform::new(small_config(), workloads::catalog(), GcMode::Eager, None);
        submit_n(&mut p, "sort", 3, 3000);
        p.run_until(SimTime(60_000_000_000));
        assert_eq!(p.stats().completed, 3);
        assert!(p.stats().gc_core_ns > 0.0, "eager GC did not run");
        // All instances frozen again afterwards.
        assert_eq!(p.frozen_count(), 1);
    }

    #[test]
    fn vanilla_mode_never_runs_exit_gc() {
        let mut p = Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        submit_n(&mut p, "sort", 3, 3000);
        p.run_until(SimTime(60_000_000_000));
        assert_eq!(p.stats().gc_core_ns, 0.0);
    }

    #[test]
    fn frozen_charge_is_measured_uss() {
        let mut p = Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        submit_n(&mut p, "file-hash", 1, 1);
        p.run_until(SimTime(10_000_000_000));
        let uss: u64 = p.instance_uss().iter().map(|(_, u)| *u).sum();
        assert_eq!(p.cache_used(), uss);
        assert!(uss < p.config.instance_budget);
    }

    #[test]
    fn run_until_is_monotonic_and_resumable() {
        let mut p = Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        submit_n(&mut p, "clock", 5, 1000);
        p.run_until(SimTime(2_000_000_000));
        let done_early = p.stats().completed;
        p.run_until(SimTime(30_000_000_000));
        assert!(p.stats().completed >= done_early);
        assert_eq!(p.stats().completed, 5);
        assert_eq!(p.now(), SimTime(30_000_000_000));
    }

    #[test]
    fn shutdown_returns_accounting_to_zero() {
        let mut p = Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        submit_n(&mut p, "mapreduce", 2, 2000);
        p.run_until(SimTime(60_000_000_000));
        assert!(p.cache_used() > 0);
        p.shutdown().expect("clean teardown");
        assert_eq!(p.cache_used(), 0);
        assert_eq!(p.instance_count(), 0);
        assert_eq!(p.system().process_count(), 0);
    }

    #[test]
    fn disabled_fault_plan_changes_nothing() {
        // A plan with every probability at zero must behave exactly
        // like no plan at all: zero-rate draws consume no randomness.
        let run = |faults: Option<FaultPlan>| {
            let config = PlatformConfig {
                faults,
                ..small_config()
            };
            let mut p = Platform::new(config, workloads::catalog(), GcMode::Vanilla, None);
            submit_n(&mut p, "mapreduce", 4, 1500);
            p.run_until(SimTime(60_000_000_000));
            (
                p.stats().completed,
                p.stats().cold_boots,
                p.stats().warm_starts,
                p.cache_used(),
                p.stats().exec_core_ns.to_bits(),
            )
        };
        assert_eq!(run(None), run(Some(FaultPlan::disabled(123))));
    }

    #[test]
    fn checkpoint_restores_into_identical_platform() {
        let make = || Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        let mut a = make();
        submit_n(&mut a, "mapreduce", 3, 2000);
        a.run_until(SimTime(7_000_000_000));
        let snap = a.checkpoint();
        let mut b = make();
        b.restore(&snap).expect("restore");
        assert_eq!(b.checkpoint(), snap, "restore must reproduce the checkpoint bytes");
        // Both continue to the same final state.
        a.run_until(SimTime(60_000_000_000));
        b.run_until(SimTime(60_000_000_000));
        assert_eq!(a.checkpoint(), b.checkpoint());
        assert_eq!(a.stats().completed, 3);
    }

    #[test]
    fn checkpoint_rejects_wrong_configuration() {
        let mut a = Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        submit_n(&mut a, "sort", 1, 1);
        a.run_until(SimTime(5_000_000_000));
        let snap = a.checkpoint();
        let mut config = small_config();
        config.cores = 8.0;
        let mut b = Platform::new(config, workloads::catalog(), GcMode::Vanilla, None);
        assert!(matches!(
            b.restore(&snap),
            Err(PlatformError::Snapshot(snapshot::SnapError::Mismatch { .. }))
        ));
        let mut c = Platform::new(small_config(), workloads::catalog(), GcMode::Eager, None);
        assert!(c.restore(&snap).is_err(), "GC mode is part of the fingerprint");
    }

    #[test]
    fn corrupt_checkpoint_leaves_platform_untouched() {
        let mut a = Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        submit_n(&mut a, "file-hash", 2, 3000);
        a.run_until(SimTime(20_000_000_000));
        let before = a.checkpoint();
        let mut bad = before.clone();
        let last = bad.len() - 1;
        bad.truncate(last);
        assert!(a.restore(&bad).is_err());
        assert_eq!(a.checkpoint(), before, "failed restore must not mutate");
    }

    #[test]
    fn armed_kill_aborts_and_recovery_matches_control() {
        let run_cfg = || PlatformConfig {
            faults: Some(FaultPlan::uniform(5, 0.1)),
            ..small_config()
        };
        let make = || Platform::new(run_cfg(), workloads::catalog(), GcMode::Vanilla, None);
        // Control: uninterrupted.
        let mut control = make();
        submit_n(&mut control, "mapreduce", 6, 1500);
        control.run_until(SimTime(90_000_000_000));
        let want = control.checkpoint();
        // Victim: checkpoint early, get killed, restore, resume.
        let mut victim = make();
        submit_n(&mut victim, "mapreduce", 6, 1500);
        victim.run_until(SimTime(4_000_000_000));
        let snap = victim.checkpoint();
        let at = victim.events_handled() + 10;
        victim.arm_kill(at);
        let err = victim.try_run_until(SimTime(90_000_000_000)).unwrap_err();
        assert!(matches!(err, PlatformError::Killed { .. }), "{err}");
        let mut recovered = make();
        submit_n(&mut recovered, "mapreduce", 6, 1500);
        recovered.run_until(SimTime(4_000_000_000));
        recovered.restore(&snap).expect("restore");
        recovered.run_until(SimTime(90_000_000_000));
        assert_eq!(recovered.checkpoint(), want, "recovered digest must match control");
    }

    #[test]
    fn shutdown_after_restore_reports_zero_residue() {
        let make = || Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        let mut a = make();
        submit_n(&mut a, "mapreduce", 2, 2000);
        a.run_until(SimTime(30_000_000_000));
        let snap = a.checkpoint();
        let mut b = make();
        b.restore(&snap).expect("restore");
        assert!(b.cache_used() > 0);
        b.shutdown().expect("shutdown after restore must be clean");
        assert_eq!(b.cache_used(), 0);
        assert_eq!(b.system().process_count(), 0);
    }

    #[test]
    fn faulty_run_is_deterministic() {
        let run = |seed: u64| {
            let config = PlatformConfig {
                faults: Some(FaultPlan::uniform(seed, 0.2)),
                ..small_config()
            };
            let mut p = Platform::new(config, workloads::catalog(), GcMode::Vanilla, None);
            submit_n(&mut p, "mapreduce", 20, 700);
            p.run_until(SimTime(300_000_000_000));
            (
                p.stats().completed,
                p.stats().failed,
                p.stats().fault_events(),
                p.stats().retries,
                p.cache_used(),
            )
        };
        let a = run(7);
        assert_eq!(a, run(7), "same fault seed must replay identically");
        assert!(a.2 > 0, "20% fault rate produced no fault events");
        assert_eq!(a.0 + a.1, 20, "every request must terminate");
    }

    #[test]
    fn base_checkpoint_folds_to_canonical_bytes() {
        let make = || Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        let mut a = make();
        submit_n(&mut a, "mapreduce", 3, 2000);
        a.run_until(SimTime(7_000_000_000));
        let full = a.checkpoint();
        let base = a.checkpoint_base(1, &[]);
        let mut b = make();
        let (epoch, extra) = b.restore_chain(&[base]).expect("restore base");
        assert_eq!(epoch, 1);
        assert!(extra.is_empty());
        assert_eq!(
            b.checkpoint(),
            full,
            "a folded base must reproduce the canonical checkpoint bytes"
        );
    }

    #[test]
    fn delta_chain_folds_to_canonical_bytes() {
        let make = || Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        let mut a = make();
        submit_n(&mut a, "mapreduce", 6, 1500);
        a.run_until(SimTime(5_000_000_000));
        let base = a.checkpoint_base(1, &[]);
        a.run_until(SimTime(9_000_000_000));
        let mid = a.checkpoint();
        let delta = a.checkpoint_delta(2, 1, &[]);
        a.run_until(SimTime(14_000_000_000));
        let full = a.checkpoint();
        let delta2 = a.checkpoint_delta(3, 2, &[]);
        let mut b = make();
        let (epoch, _) = b.restore_chain(&[base.clone(), delta.clone()]).expect("restore");
        assert_eq!(epoch, 2);
        assert_eq!(b.checkpoint(), mid, "base+delta must fold to the mid-run state");
        let mut c = make();
        let (epoch, _) = c.restore_chain(&[base, delta, delta2]).expect("restore");
        assert_eq!(epoch, 3);
        assert_eq!(c.checkpoint(), full, "a two-delta chain must fold to the final state");
        // The folded platform keeps simulating identically.
        a.run_until(SimTime(120_000_000_000));
        c.run_until(SimTime(120_000_000_000));
        assert_eq!(a.checkpoint(), c.checkpoint());
    }

    #[test]
    fn delta_chain_folds_at_arbitrary_cut_points() {
        // Whatever instant a delta is cut at — mid-boot, mid-freeze,
        // mid-reclaim — the fold must land on the canonical bytes.
        let make = || Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        for cut_ms in [1_700u64, 3_300, 6_100, 8_900, 23_000] {
            let mut a = make();
            submit_n(&mut a, "mapreduce", 5, 1100);
            a.run_until(SimTime(1_000_000_000));
            let base = a.checkpoint_base(1, &[]);
            a.run_until(SimTime(cut_ms * 1_000_000));
            let full = a.checkpoint();
            let delta = a.checkpoint_delta(2, 1, &[]);
            let mut b = make();
            b.restore_chain(&[base, delta]).expect("restore");
            assert_eq!(b.checkpoint(), full, "cut at {cut_ms}ms diverged");
        }
    }

    #[test]
    fn delta_is_smaller_than_base() {
        let make = || Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        let mut a = make();
        submit_n(&mut a, "mapreduce", 8, 1500);
        a.run_until(SimTime(30_000_000_000));
        let base = a.checkpoint_base(1, &[]);
        // A quiet tail: little mutated since the base.
        a.run_until(SimTime(30_050_000_000));
        let delta = a.checkpoint_delta(2, 1, &[]);
        assert!(
            delta.len() < base.len(),
            "delta ({}) must be smaller than base ({})",
            delta.len(),
            base.len()
        );
    }

    #[test]
    fn restore_chain_carries_extra_frames_from_head() {
        let make = || Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        let mut a = make();
        submit_n(&mut a, "mapreduce", 2, 2000);
        a.run_until(SimTime(5_000_000_000));
        let base = a.checkpoint_base(1, &[(Platform::FRAME_EXTRA_BASE, b"old".to_vec())]);
        a.run_until(SimTime(8_000_000_000));
        let delta = a.checkpoint_delta(2, 1, &[(Platform::FRAME_EXTRA_BASE, b"new".to_vec())]);
        let mut b = make();
        let (_, extra) = b.restore_chain(&[base, delta]).expect("restore");
        assert_eq!(
            extra,
            vec![(Platform::FRAME_EXTRA_BASE, b"new".to_vec())],
            "only the chain head's driver frames come back"
        );
    }

    #[test]
    fn restore_chain_rejects_corruption_and_bad_linkage() {
        let make = || Platform::new(small_config(), workloads::catalog(), GcMode::Vanilla, None);
        let mut a = make();
        submit_n(&mut a, "mapreduce", 3, 2000);
        a.run_until(SimTime(5_000_000_000));
        let base = a.checkpoint_base(1, &[]);
        a.run_until(SimTime(8_000_000_000));
        let delta = a.checkpoint_delta(2, 1, &[]);

        // A flipped byte anywhere in either container must be caught.
        for (i, source) in [&base, &delta].into_iter().enumerate() {
            let mut bad = source.clone();
            let at = bad.len() / 2;
            bad[at] ^= 0x10;
            let chain = if i == 0 {
                vec![bad, delta.clone()]
            } else {
                vec![base.clone(), bad]
            };
            assert!(make().restore_chain(&chain).is_err(), "corrupt container {i} accepted");
        }
        // A delta cannot head a chain, and linkage must be contiguous.
        assert!(make().restore_chain(std::slice::from_ref(&delta)).is_err());
        assert!(make().restore_chain(&[delta.clone(), delta.clone()]).is_err());
        assert!(make().restore_chain(&[]).is_err());
        // The happy path still works after all the rejected attempts.
        make().restore_chain(&[base, delta]).expect("valid chain");
    }
}
