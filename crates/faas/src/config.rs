//! Platform configuration.

use simos::SimDuration;

/// Which commercial environment the platform imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvFlavor {
    /// OpenWhisk on one host: runtime libraries are shared between
    /// same-language containers through the page cache.
    OpenWhisk,
    /// AWS Lambda (§5.4): every instance gets private copies of its
    /// runtime libraries, and images are larger.
    Lambda,
}

/// Platform-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlatformConfig {
    /// Memory available for caching instances (the paper's §5.3 uses
    /// 2 GiB).
    pub cache_budget: u64,
    /// Memory budget per instance (256 MiB by default, the OpenWhisk
    /// default the paper uses).
    pub instance_budget: u64,
    /// CPU share per instance (0.14, from commercial configurations).
    pub cpu_share: f64,
    /// Cores available to function execution.
    pub cores: f64,
    /// Container-creation overhead on a cold boot, beyond runtime
    /// startup (image pull is assumed warm).
    pub container_create: SimDuration,
    /// Cost of thawing (unpausing) a frozen instance.
    pub thaw: SimDuration,
    /// Environment flavour.
    pub env: EnvFlavor,
    /// Interval between memory-manager sweep ticks.
    pub sweep_interval: SimDuration,
    /// RNG seed for instance state.
    pub seed: u64,
}

impl Default for PlatformConfig {
    fn default() -> PlatformConfig {
        PlatformConfig {
            cache_budget: 2 << 30,
            instance_budget: 256 << 20,
            cpu_share: 0.14,
            cores: 3.0,
            container_create: SimDuration::from_millis(300),
            thaw: SimDuration::from_millis(2),
            env: EnvFlavor::OpenWhisk,
            sweep_interval: SimDuration::from_millis(200),
            seed: 42,
        }
    }
}

impl PlatformConfig {
    /// Sanity checks.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configurations.
    pub fn validate(&self) {
        assert!(self.cache_budget >= self.instance_budget);
        assert!(self.cpu_share > 0.0 && self.cpu_share <= self.cores);
        assert!(self.sweep_interval > SimDuration::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_paper_shaped() {
        let c = PlatformConfig::default();
        c.validate();
        assert_eq!(c.cache_budget, 2 << 30);
        assert_eq!(c.instance_budget, 256 << 20);
        assert!((c.cpu_share - 0.14).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn cache_smaller_than_instance_rejected() {
        let mut c = PlatformConfig::default();
        c.cache_budget = c.instance_budget - 1;
        c.validate();
    }
}
