//! Platform configuration.

use simos::SimDuration;

use crate::fault::FaultPlan;

/// Which commercial environment the platform imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvFlavor {
    /// OpenWhisk on one host: runtime libraries are shared between
    /// same-language containers through the page cache.
    OpenWhisk,
    /// AWS Lambda (§5.4): every instance gets private copies of its
    /// runtime libraries, and images are larger.
    Lambda,
}

/// Platform-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlatformConfig {
    /// Memory available for caching instances (the paper's §5.3 uses
    /// 2 GiB).
    pub cache_budget: u64,
    /// Memory budget per instance (256 MiB by default, the OpenWhisk
    /// default the paper uses).
    pub instance_budget: u64,
    /// CPU share per instance (0.14, from commercial configurations).
    pub cpu_share: f64,
    /// Cores available to function execution.
    pub cores: f64,
    /// Container-creation overhead on a cold boot, beyond runtime
    /// startup (image pull is assumed warm).
    pub container_create: SimDuration,
    /// Cost of thawing (unpausing) a frozen instance.
    pub thaw: SimDuration,
    /// Environment flavour.
    pub env: EnvFlavor,
    /// Interval between memory-manager sweep ticks.
    pub sweep_interval: SimDuration,
    /// RNG seed for instance state.
    pub seed: u64,
    /// Maximum retries a failed request gets before it is reported
    /// failed (capped exponential backoff between attempts).
    pub max_retries: u32,
    /// Base backoff before the first retry; doubles per attempt.
    pub retry_backoff: SimDuration,
    /// Upper bound on a single backoff interval.
    pub retry_backoff_cap: SimDuration,
    /// Per-request deadline: a retry is never scheduled past
    /// `arrival + request_deadline` (the request fails instead).
    pub request_deadline: SimDuration,
    /// Consecutive failures of one function that trip its circuit
    /// breaker (`0` disables the breaker entirely).
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before the half-open
    /// probe window.
    pub breaker_cooldown: SimDuration,
    /// Wall time a *failed* reclamation burns before it gives up (the
    /// cgroup-probe timeout).
    pub reclaim_timeout: SimDuration,
    /// Optional deterministic fault schedule. `None` (the default)
    /// means the fault machinery does not exist at runtime: no draw is
    /// ever taken and output is byte-identical to a fault-free build.
    pub faults: Option<FaultPlan>,
}

impl Default for PlatformConfig {
    fn default() -> PlatformConfig {
        PlatformConfig {
            cache_budget: 2 << 30,
            instance_budget: 256 << 20,
            cpu_share: 0.14,
            cores: 3.0,
            container_create: SimDuration::from_millis(300),
            thaw: SimDuration::from_millis(2),
            env: EnvFlavor::OpenWhisk,
            sweep_interval: SimDuration::from_millis(200),
            seed: 42,
            max_retries: 3,
            retry_backoff: SimDuration::from_millis(200),
            retry_backoff_cap: SimDuration::from_secs(5),
            request_deadline: SimDuration::from_secs(120),
            breaker_threshold: 5,
            breaker_cooldown: SimDuration::from_secs(10),
            reclaim_timeout: SimDuration::from_millis(100),
            faults: None,
        }
    }
}

impl PlatformConfig {
    /// Sanity checks.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configurations.
    pub fn validate(&self) {
        assert!(self.cache_budget >= self.instance_budget);
        assert!(self.cpu_share > 0.0 && self.cpu_share <= self.cores);
        assert!(self.sweep_interval > SimDuration::ZERO);
        assert!(self.retry_backoff > SimDuration::ZERO);
        assert!(self.retry_backoff_cap >= self.retry_backoff);
        assert!(self.request_deadline > SimDuration::ZERO);
        assert!(self.reclaim_timeout > SimDuration::ZERO);
        if let Some(plan) = &self.faults {
            plan.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_paper_shaped() {
        let c = PlatformConfig::default();
        c.validate();
        assert_eq!(c.cache_budget, 2 << 30);
        assert_eq!(c.instance_budget, 256 << 20);
        assert!((c.cpu_share - 0.14).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn cache_smaller_than_instance_rejected() {
        let mut c = PlatformConfig::default();
        c.cache_budget = c.instance_budget - 1;
        c.validate();
    }

    #[test]
    fn failure_handling_defaults_are_inert() {
        let c = PlatformConfig::default();
        assert!(c.faults.is_none(), "faults must default off");
        assert!(c.max_retries >= 1);
        assert!(c.breaker_threshold > 0);
    }

    #[test]
    #[should_panic]
    fn invalid_fault_plan_rejected() {
        let c = PlatformConfig {
            faults: Some(FaultPlan {
                crash: 2.0,
                ..FaultPlan::disabled(1)
            }),
            ..PlatformConfig::default()
        };
        c.validate();
    }
}
