//! The memory-manager hook Desiccant implements.
//!
//! The paper keeps Desiccant *non-intrusive*: it observes the
//! platform's memory accounting, is told about evictions, receives
//! per-reclamation profiles, and answers with which frozen instances to
//! reclaim (§4.2–§4.5). This trait is exactly that interface — the
//! platform neither knows nor cares how the selection works, and the
//! baselines simply run with no manager installed.

use simos::{SimDuration, SimTime};

use crate::platform::InstanceId;

/// What the platform exposes about one frozen instance.
///
/// `Copy`: the platform rebuilds this view for every frozen instance
/// on every sweep tick, so the view must not drag a heap allocation
/// per instance per sweep — the function name borrows the
/// `&'static str` from the catalog's `FunctionSpec` instead of
/// cloning it.
#[derive(Debug, Clone, Copy)]
pub struct FrozenView {
    /// Platform-level identifier.
    pub id: InstanceId,
    /// Function name (instances of the same function share memory
    /// behaviour, §4.5.2).
    pub function: &'static str,
    /// Chain stage this instance runs.
    pub stage: u8,
    /// When the instance was frozen.
    pub frozen_since: SimTime,
    /// Current in-heap memory consumption (the `pmap`-or-counters probe
    /// of §4.5.2) in bytes.
    pub heap_resident: u64,
    /// Current USS charge against the cache.
    pub charge: u64,
    /// Whether the instance has been reclaimed since it last ran.
    pub reclaimed: bool,
}

/// The §4.4 profile, extended by the platform with CPU time.
#[derive(Debug, Clone, Copy)]
pub struct ReclaimProfile {
    /// In-heap live bytes the runtime reported.
    pub live_bytes: u64,
    /// Bytes released to the OS.
    pub released_bytes: u64,
    /// Accumulated CPU time of the reclamation (wall × CPUs, the §4.5.2
    /// cgroup computation).
    pub cpu_time: SimDuration,
}

/// A freeze-aware memory manager (Desiccant, or an ablation variant).
///
/// `Send`: the cluster layer parks each shard's platform — manager
/// included — behind a `Mutex` and advances shards on scoped worker
/// threads, so a manager must be movable across threads. Managers are
/// plain data (profiles, thresholds, counters); none holds
/// thread-affine state.
pub trait MemoryManager: Send {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Called on every sweep tick and after cache-accounting changes.
    /// Returns the frozen instances to reclaim now, best first. The
    /// platform reclaims them with idle CPU.
    fn select_reclaims(
        &mut self,
        now: SimTime,
        cache_budget: u64,
        cache_used: u64,
        frozen: &[FrozenView],
    ) -> Vec<InstanceId>;

    /// Called when the platform evicts (destroys) an instance to make
    /// space — the signal that lowers Desiccant's activation threshold
    /// (§4.5.1).
    fn note_eviction(&mut self, now: SimTime, function: &str);

    /// Called when an instance is destroyed for any reason; profiles
    /// for it should be dropped (§4.5.2).
    fn note_destroyed(&mut self, id: InstanceId);

    /// Called after a reclamation completes, with the combined profile.
    fn note_reclaimed(&mut self, now: SimTime, id: InstanceId, function: &str, profile: ReclaimProfile);

    /// Called when a reclamation *fails* (runtime wedged, probe
    /// timeout, or an injected fault): CPU was burned but nothing was
    /// released. Managers should deprioritize the instance so the
    /// platform's LRU eviction handles the pressure instead of
    /// retrying a broken reclaim. Default: ignore.
    fn note_reclaim_failed(&mut self, now: SimTime, id: InstanceId, function: &str) {
        let _ = (now, id, function);
    }

    /// Whether reclamation GCs should preserve weakly referenced
    /// objects (§4.7). Desiccant: yes.
    fn keep_weak(&self) -> bool {
        true
    }

    /// Whether to apply the §4.6 private-library unmap optimization.
    fn unmap_libs(&self) -> bool {
        false
    }

    /// Serializes the manager's mutable state for a platform
    /// checkpoint. Stateless managers (the default) return an empty
    /// blob; stateful ones must round-trip everything
    /// [`MemoryManager::restore_state`] needs to resume identically.
    fn snapshot_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state captured by [`MemoryManager::snapshot_state`]
    /// into an identically-configured manager. The default accepts only
    /// the empty blob a stateless manager produced.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), snapshot::SnapError> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(snapshot::SnapError::mismatch(
                "manager state blob",
                "empty (this manager keeps no state)",
                format!("{} bytes", bytes.len()),
            ))
        }
    }
}
