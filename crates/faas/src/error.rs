//! Typed platform errors.
//!
//! The event loop used to `expect()` its way through instance lookups:
//! a stale event for a removed instance was an instant panic with no
//! context. Every such path now surfaces a [`PlatformError`] naming
//! the instance and the handler that tripped, so a corrupted schedule
//! is diagnosable instead of fatal-by-unwrap. Lifecycle races the
//! design *allows* (a `ReclaimDone` for an instance evicted mid-flight)
//! are not errors at all — they are counted no-ops.

use std::fmt;

use simos::SimOsError;

use crate::platform::InstanceId;

/// Result alias for fallible platform operations.
pub type PlatformResult<T> = Result<T, PlatformError>;

/// Errors surfaced by the platform event loop and teardown paths.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// An event referenced an instance that no longer exists in a
    /// context where the schedule guarantees it must (e.g. a
    /// `StageDone` for an instance nothing could have destroyed).
    StaleInstance {
        /// The missing instance.
        id: InstanceId,
        /// The handler that tripped.
        context: &'static str,
    },
    /// Cache accounting did not return to zero when the last instance
    /// was destroyed — a charge leak.
    CacheResidue {
        /// Bytes still charged after teardown.
        bytes: u64,
    },
    /// Simulated processes survived a full teardown.
    ProcessResidue {
        /// Processes still alive.
        count: usize,
    },
    /// A simulated OS call failed in a context with no recovery path.
    Os(SimOsError),
    /// The event loop was aborted by an armed kill point (see
    /// [`crate::platform::Platform::arm_kill`]): the simulated process
    /// died mid-run. Recovery is the caller's job — restore the latest
    /// checkpoint and replay the journal.
    Killed {
        /// Events handled when the kill struck.
        events_handled: u64,
    },
    /// A checkpoint could not be decoded or does not match this
    /// platform's configuration.
    Snapshot(snapshot::SnapError),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::StaleInstance { id, context } => {
                write!(f, "stale event in {context}: instance {} is gone", id.0)
            }
            PlatformError::CacheResidue { bytes } => {
                write!(f, "cache accounting leaked {bytes} bytes past teardown")
            }
            PlatformError::ProcessResidue { count } => {
                write!(f, "{count} simulated process(es) survived teardown")
            }
            PlatformError::Os(e) => write!(f, "simulated OS error: {e}"),
            PlatformError::Killed { events_handled } => {
                write!(f, "killed by armed crash point after {events_handled} events")
            }
            PlatformError::Snapshot(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::Os(e) => Some(e),
            PlatformError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimOsError> for PlatformError {
    fn from(e: SimOsError) -> PlatformError {
        PlatformError::Os(e)
    }
}

impl From<snapshot::SnapError> for PlatformError {
    fn from(e: snapshot::SnapError) -> PlatformError {
        PlatformError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_context() {
        let e = PlatformError::StaleInstance {
            id: InstanceId(7),
            context: "stage-done",
        };
        let s = e.to_string();
        assert!(s.contains("stage-done") && s.contains('7'), "{s}");
    }

    #[test]
    fn os_errors_chain_as_source() {
        let e = PlatformError::from(SimOsError::NoSuchFile(3));
        assert!(std::error::Error::source(&e).is_some());
    }
}
