//! The simulator's event queue: a calendar (bucket) queue keyed on
//! [`SimTime`], with the old binary heap retained as a reference
//! oracle.
//!
//! Replaying Azure-scale traces pushes millions of scheduled events
//! through the platform loop; `BinaryHeap::push`/`pop` pay `O(log n)`
//! comparisons *and* a cache miss per level, which made the queue the
//! dominant event-loop cost after PR 1 removed the page-flag scans.
//! [`CalendarQueue`] replaces it with the classic calendar-queue
//! design (Brown 1988): a power-of-two array of time buckets, each
//! covering one "virtual day" of `2^shift` ns. Insert hashes the
//! event's day-number (`time >> shift`) into the array — O(1) — and
//! pop scans forward from the current day, wrapping around the array,
//! which is O(1) amortized while events are dense and falls back to
//! one global minimum scan per long empty gap. The day width adapts
//! to the schedule: it is re-derived from the median inter-event gap
//! whenever the queue doubles or a pop detects that the distribution
//! collapsed into over-full buckets, so throughput holds up whether
//! events are nanoseconds or seconds apart.
//!
//! The pop order is **exactly** the `(time, seq)` order the old heap
//! produced — FIFO within a timestamp via the strictly increasing
//! `seq` — so the swap is a pure representation change: replay
//! digests, figure outputs, and checkpoint bytes are all unchanged.
//! `tests/prop_queue.rs` holds the equivalence proptest against
//! [`ReferenceQueue`], including duplicate timestamps and far-future
//! wraparound schedules.

// tidy:allow(hot-containers) -- the reference oracle below is the one sanctioned BinaryHeap use
use std::collections::BinaryHeap;

use simos::SimTime;

/// log2 of the day width an empty queue starts with: `2^20` ns
/// ≈ 1.05 ms, matching the millisecond-scale spacing of boot, stage,
/// and retry events.
const DEFAULT_SHIFT: u32 = 20;
/// Narrowest adaptive day width: `2^5` ns = 32 ns.
const MIN_SHIFT: u32 = 5;
/// Widest adaptive day width: `2^32` ns ≈ 4.3 s.
const MAX_SHIFT: u32 = 32;
/// Initial (and minimum) bucket-array size; always a power of two.
const MIN_BUCKETS: usize = 1024;
/// Ceiling on the bucket array: growth stops here and buckets simply
/// get deeper (still correct, just more linear scanning per pop).
const MAX_BUCKETS: usize = 1 << 20;
/// `locate` work (days advanced plus items inspected) beyond which the
/// current day width is judged wrong for the schedule and the queue
/// rebuilds with a re-derived width. A rebuild is only allowed after
/// `SCAN_LIMIT` pops since the previous one, so its `O(n log n)` cost
/// amortizes over at least that many operations.
const SCAN_LIMIT: usize = 128;

/// One queued entry.
#[derive(Debug, Clone)]
struct Item<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

/// A calendar queue over `(SimTime, seq)` keys: O(1) amortized push
/// and pop, min-first, FIFO within equal timestamps (callers must
/// supply strictly increasing `seq` values, as the platform does).
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    /// `buckets[vday & mask]` holds every item of that virtual day
    /// (and of any other day congruent modulo the array size).
    buckets: Vec<Vec<Item<T>>>,
    /// `buckets.len() - 1`; the length is always a power of two.
    mask: u64,
    len: usize,
    /// The scan cursor: no queued item has a virtual day below this.
    cur_vday: u64,
    /// Cached location of the current minimum, `(bucket, slot, at,
    /// seq)`, so the peek-then-pop pattern of the event loop scans
    /// once per event instead of twice.
    cached: Option<(usize, usize, SimTime, u64)>,
    /// log2 of the day width in nanoseconds, re-derived from the
    /// schedule's median inter-event gap on every rebuild.
    shift: u32,
    /// Pops since the last rebuild — the rebuild-cost amortizer.
    pops: usize,
    /// The one bucket currently kept sorted descending by `(time,
    /// seq)` — the bucket the scan cursor is draining, so its minimum
    /// sits at the tail and consecutive pops are O(1) `Vec::pop`s.
    /// Pushes into this bucket binary-insert to preserve the order;
    /// pushes anywhere else leave it untouched.
    sorted_bucket: Option<usize>,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> CalendarQueue<T> {
        CalendarQueue::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> CalendarQueue<T> {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: (MIN_BUCKETS - 1) as u64,
            len: 0,
            cur_vday: 0,
            cached: None,
            shift: DEFAULT_SHIFT,
            pops: 0,
            sorted_bucket: None,
        }
    }

    /// Rebuilds a queue from entries in canonical `(time, seq)` order —
    /// the checkpoint restore path. Rejects out-of-order or duplicate
    /// keys so a corrupt snapshot cannot smuggle in an impossible
    /// schedule.
    pub fn from_sorted(items: Vec<(SimTime, u64, T)>) -> Result<CalendarQueue<T>, &'static str> {
        let mut rows = Vec::with_capacity(items.len());
        let mut prev: Option<(SimTime, u64)> = None;
        for (at, seq, payload) in items {
            if prev.is_some_and(|p| p >= (at, seq)) {
                return Err("event queue entries not in strict (time, seq) order");
            }
            prev = Some((at, seq));
            rows.push(Item { at, seq, payload });
        }
        Ok(Self::build(rows))
    }

    /// The bucket number ("virtual day") a timestamp falls into at the
    /// current day width.
    #[inline]
    fn vday(&self, at: SimTime) -> u64 {
        at.0 >> self.shift
    }

    /// The bucket holding virtual day `idx`. Callers derive `idx` as
    /// `day & self.mask`, and `mask` is `buckets.len() - 1` with a
    /// power-of-two length, so the index is in bounds by construction;
    /// funneling every bucket access through these two accessors keeps
    /// that invariant in one place.
    #[inline]
    fn bucket(&self, idx: usize) -> &Vec<Item<T>> {
        // tidy:allow(panic-reachability) -- idx is `day & mask`, always < buckets.len()
        &self.buckets[idx]
    }

    #[inline]
    fn bucket_mut(&mut self, idx: usize) -> &mut Vec<Item<T>> {
        // tidy:allow(panic-reachability) -- idx is `day & mask`, always < buckets.len()
        &mut self.buckets[idx]
    }

    /// The day width that suits `items` (sorted by `(time, seq)`): two
    /// median inter-event gaps per day, so a typical day holds a couple
    /// of items regardless of whether the schedule is spaced in
    /// nanoseconds or seconds. Gaps are sampled at the dequeue front —
    /// the region every pop scans (Brown's calibration) — so a dense
    /// burst at the head sets the width even when the tail is sparse,
    /// and the median (not the mean) keeps one outlier gap from
    /// stretching every bucket. A floor of `front span / SCAN_LIMIT`
    /// keeps bursty schedules honest: the whole sampled front must
    /// stay reachable within one scan budget, otherwise a dense burst
    /// followed by a quiet millisecond would pick nanosecond days and
    /// pay a global scan to cross every inter-burst gap.
    fn choose_shift(items: &[Item<T>]) -> u32 {
        let k = items.len().min(SCAN_LIMIT + 1);
        let front = items.get(..k).unwrap_or(items);
        let mut gaps: Vec<u64> = front
            .iter()
            .zip(front.iter().skip(1))
            .map(|(a, b)| b.at.0 - a.at.0)
            .filter(|&g| g > 0)
            .collect();
        if gaps.is_empty() {
            return DEFAULT_SHIFT;
        }
        let mid = gaps.len() / 2;
        let (_, &mut median, _) = gaps.select_nth_unstable(mid);
        let span = match (front.first(), front.last()) {
            (Some(lo), Some(hi)) => hi.at.0 - lo.at.0,
            _ => 0,
        };
        let width = median
            .saturating_mul(4)
            .max(span / SCAN_LIMIT as u64)
            .max(1);
        width.ilog2().clamp(MIN_SHIFT, MAX_SHIFT)
    }

    /// Builds a queue around `items`, whose first `SCAN_LIMIT + 1`
    /// elements must be the smallest, in `(time, seq)` order (the rest
    /// may be arbitrary): picks the day width from the front gap
    /// distribution and sizes the bucket array to roughly one item per
    /// bucket.
    fn build(items: Vec<Item<T>>) -> CalendarQueue<T> {
        let shift = Self::choose_shift(&items);
        let mut n = MIN_BUCKETS;
        while n < items.len() && n < MAX_BUCKETS {
            n *= 2;
        }
        let mut q = CalendarQueue {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            mask: (n - 1) as u64,
            len: 0,
            cur_vday: 0,
            cached: None,
            shift,
            pops: 0,
            sorted_bucket: None,
        };
        for item in items {
            let idx = (q.vday(item.at) & q.mask) as usize;
            if q.len == 0 {
                // The first (sorted) item is the global minimum, and it
                // lands in slot 0 of its bucket.
                q.cur_vday = q.vday(item.at);
                q.cached = Some((idx, 0, item.at, item.seq));
            }
            q.bucket_mut(idx).push(item);
            q.len += 1;
        }
        q
    }

    /// Re-derives the day width and bucket count from the current
    /// contents and rehashes everything. Only the front `SCAN_LIMIT +
    /// 1` items get sorted (that's all the width estimator reads), so
    /// the whole rebuild is `O(n)`; callers gate it behind growth or
    /// the `SCAN_LIMIT` pop cooldown.
    fn rebuild(&mut self) {
        let mut items: Vec<Item<T>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            items.append(bucket);
        }
        let k = items.len().min(SCAN_LIMIT + 1);
        if k > 1 {
            items.select_nth_unstable_by_key(k - 1, |i| (i.at, i.seq));
            let (front, _) = items.split_at_mut(k);
            front.sort_unstable_by_key(|i| (i.at, i.seq));
        }
        *self = Self::build(items);
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues `payload` at `(at, seq)`.
    pub fn push(&mut self, at: SimTime, seq: u64, payload: T) {
        if self.len >= self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.rebuild();
        }
        let day = self.vday(at);
        if self.len == 0 || day < self.cur_vday {
            // Either the cursor is stale (empty queue) or the caller
            // scheduled before the cursor (the platform never does,
            // but the structure stays correct if a test does).
            self.cur_vday = day;
        }
        let idx = (day & self.mask) as usize;
        let slot = if self.sorted_bucket == Some(idx) {
            // Keep the drain bucket's descending order: binary-insert,
            // and shift the cached slot if it sits at or after the
            // insertion point.
            let pos = self.bucket(idx).partition_point(|i| (i.at, i.seq) > (at, seq));
            self.bucket_mut(idx).insert(pos, Item { at, seq, payload });
            if let Some((cb, cs, _, _)) = self.cached.as_mut() {
                if *cb == idx && *cs >= pos {
                    *cs += 1;
                }
            }
            pos
        } else {
            let slot = self.bucket(idx).len();
            self.bucket_mut(idx).push(Item { at, seq, payload });
            slot
        };
        self.len += 1;
        // Keep the cache exact: a new global minimum replaces it; any
        // other push leaves the cached minimum the true minimum.
        if let Some((_, _, cat, cseq)) = self.cached {
            if (at, seq) < (cat, cseq) {
                self.cached = Some((idx, slot, at, seq));
            }
        }
    }

    /// Key of the next item to pop, without removing it.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.locate().map(|(_, _, at, seq)| (at, seq))
    }

    /// Removes and returns the minimum-`(time, seq)` item.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if let Some((bucket, slot, at, _)) = self.cached {
            if self.sorted_bucket == Some(bucket) && slot + 1 == self.bucket(bucket).len() {
                // Fast path: the cached minimum is the sorted drain
                // bucket's tail, so removal is a plain `Vec::pop`. If
                // the new tail is still in the current day it is the
                // next global minimum — every earlier day is exhausted
                // and a day lives in exactly one bucket — so cache it
                // and skip `locate` on the next pop too. (`pop` always
                // yields here — the cached slot is the tail — but a
                // `None` just falls through to the full `locate` path.)
                if let Some(item) = self.bucket_mut(bucket).pop() {
                    self.len -= 1;
                    self.pops += 1;
                    self.cur_vday = self.vday(at);
                    self.cached = None;
                    if let Some(next) = self.bucket(bucket).last() {
                        if self.vday(next.at) == self.cur_vday {
                            let slot = self.bucket(bucket).len() - 1;
                            self.cached = Some((bucket, slot, next.at, next.seq));
                        }
                    }
                    return Some((item.at, item.seq, item.payload));
                }
            }
        }
        let (bucket, slot, at, _) = self.locate()?;
        let item = self.bucket_mut(bucket).swap_remove(slot);
        self.len -= 1;
        self.cur_vday = self.vday(at);
        self.cached = None;
        self.pops += 1;
        if self.sorted_bucket == Some(bucket) {
            if slot == self.bucket(bucket).len() {
                // Popped the sorted bucket's tail; same next-tail
                // caching as the fast path above.
                if let Some(next) = self.bucket(bucket).last() {
                    if self.vday(next.at) == self.cur_vday {
                        let slot = self.bucket(bucket).len() - 1;
                        self.cached = Some((bucket, slot, next.at, next.seq));
                    }
                }
            } else {
                // A global scan landed mid-bucket before the sort;
                // `swap_remove` shuffled the order, so the marker goes.
                self.sorted_bucket = None;
            }
        }
        Some((item.at, item.seq, item.payload))
    }

    /// Visits every queued entry in arbitrary (bucket) order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, u64, &T)> {
        self.buckets
            .iter()
            .flatten()
            .map(|i| (i.at, i.seq, &i.payload))
    }

    /// Finds the minimum item: scan virtual days forward from the
    /// cursor (one bucket each — a day's items all hash to one
    /// bucket), falling back to one global scan — which also jumps the
    /// cursor — once the day scan has gone a full rotation or burned
    /// its work budget. A scan that cost more than `SCAN_LIMIT` means
    /// the day width no longer fits the schedule (too many items per
    /// day, or days too sparse), so the queue rebuilds itself at a
    /// re-derived width, amortized by the pop cooldown.
    fn locate(&mut self) -> Option<(usize, usize, SimTime, u64)> {
        if let Some(c) = self.cached {
            return Some(c);
        }
        if self.len == 0 {
            return None;
        }
        let rotations = self.buckets.len() as u64;
        let mut work = 0usize;
        let mut found: Option<(usize, usize, SimTime, u64)> = None;
        for day in self.cur_vday..self.cur_vday + rotations {
            if work > SCAN_LIMIT {
                break;
            }
            let bucket = (day & self.mask) as usize;
            let n = self.bucket(bucket).len();
            work += 1 + n;
            if n > 1 && self.sorted_bucket != Some(bucket) {
                // Sort the candidate bucket min-last once; draining
                // the rest of its day is then one `Vec::pop` per
                // event. A singleton bucket is trivially sorted and
                // skips the marker churn (about half of all days at
                // the steady-state density).
                self.bucket_mut(bucket)
                    .sort_unstable_by_key(|i| std::cmp::Reverse((i.at, i.seq)));
                self.sorted_bucket = Some(bucket);
            }
            // The tail is the bucket's minimum; items of congruent
            // later days sort toward the front, so a tail from a
            // later day means this day has nothing queued.
            if let Some((at, seq)) = self.bucket(bucket).last().map(|i| (i.at, i.seq)) {
                if self.vday(at) == day {
                    self.cur_vday = day;
                    found = Some((bucket, n - 1, at, seq));
                    break;
                }
            }
        }
        if found.is_none() {
            // Sparse regime: nothing within reach of the cursor. One
            // linear pass finds the true minimum.
            work += self.buckets.len() + self.len;
            for (bucket, items) in self.buckets.iter().enumerate() {
                for (slot, item) in items.iter().enumerate() {
                    if found.is_none_or(|(_, _, at, seq)| (item.at, item.seq) < (at, seq)) {
                        found = Some((bucket, slot, item.at, item.seq));
                    }
                }
            }
            if let Some((_, _, at, _)) = found {
                self.cur_vday = self.vday(at);
            }
        }
        self.cached = found;
        if work > SCAN_LIMIT && self.pops >= SCAN_LIMIT && self.len > 1 {
            self.rebuild();
        }
        self.cached
    }

}

/// The pre-calendar event queue — a plain binary min-heap on
/// `(time, seq)` — retained as the behavioral oracle (PR 1's
/// `mem::reference` pattern) and as the live baseline the perf
/// harness measures speedups against.
#[derive(Debug, Clone)]
pub struct ReferenceQueue<T> {
    // tidy:allow(hot-containers) -- this IS the sanctioned reference heap the calendar queue is checked against
    heap: BinaryHeap<RefItem<T>>,
}

#[derive(Debug, Clone)]
struct RefItem<T>(Item<T>);

impl<T> PartialEq for RefItem<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.0.at, self.0.seq) == (other.0.at, other.0.seq)
    }
}
impl<T> Eq for RefItem<T> {}
impl<T> PartialOrd for RefItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for RefItem<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want min-(time, seq).
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

impl<T> Default for ReferenceQueue<T> {
    fn default() -> ReferenceQueue<T> {
        ReferenceQueue::new()
    }
}

impl<T> ReferenceQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> ReferenceQueue<T> {
        ReferenceQueue {
            // tidy:allow(hot-containers) -- constructing the reference oracle
            heap: BinaryHeap::new(),
        }
    }

    /// Rebuilds from canonical `(time, seq)` order; same validation as
    /// [`CalendarQueue::from_sorted`].
    pub fn from_sorted(items: Vec<(SimTime, u64, T)>) -> Result<ReferenceQueue<T>, &'static str> {
        // tidy:allow(hot-containers) -- canonical constructor of the reference oracle
        let mut heap = BinaryHeap::with_capacity(items.len());
        let mut prev: Option<(SimTime, u64)> = None;
        for (at, seq, payload) in items {
            if prev.is_some_and(|p| p >= (at, seq)) {
                return Err("event queue entries not in strict (time, seq) order");
            }
            prev = Some((at, seq));
            heap.push(RefItem(Item { at, seq, payload }));
        }
        Ok(ReferenceQueue { heap })
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Queues `payload` at `(at, seq)`.
    pub fn push(&mut self, at: SimTime, seq: u64, payload: T) {
        self.heap.push(RefItem(Item { at, seq, payload }));
    }

    /// Key of the next item to pop.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|i| (i.0.at, i.0.seq))
    }

    /// Removes and returns the minimum-`(time, seq)` item.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.heap.pop().map(|i| (i.0.at, i.0.seq, i.0.payload))
    }

    /// Visits every queued entry in arbitrary (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, u64, &T)> {
        self.heap.iter().map(|i| (i.0.at, i.0.seq, &i.0.payload))
    }
}

/// Which representation an [`EventQueue`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueImpl {
    /// The calendar queue (production default).
    Calendar,
    /// The binary-heap reference oracle.
    Reference,
}

/// The platform's event queue: a calendar queue by default, with the
/// reference heap selectable at runtime for oracle tests and perf
/// baselines. Both produce identical pop order and identical
/// checkpoint bytes.
#[derive(Debug, Clone)]
pub enum EventQueue<T> {
    /// Calendar-queue representation.
    Calendar(CalendarQueue<T>),
    /// Reference binary-heap representation.
    Reference(ReferenceQueue<T>),
}

impl<T> Default for EventQueue<T> {
    fn default() -> EventQueue<T> {
        EventQueue::Calendar(CalendarQueue::new())
    }
}

impl<T> EventQueue<T> {
    /// An empty queue on the given representation.
    pub fn new(kind: QueueImpl) -> EventQueue<T> {
        match kind {
            QueueImpl::Calendar => EventQueue::Calendar(CalendarQueue::new()),
            QueueImpl::Reference => EventQueue::Reference(ReferenceQueue::new()),
        }
    }

    /// The canonical constructor: rebuilds from entries in `(time,
    /// seq)` order — every restore path goes through here.
    pub fn from_sorted(
        kind: QueueImpl,
        items: Vec<(SimTime, u64, T)>,
    ) -> Result<EventQueue<T>, &'static str> {
        Ok(match kind {
            QueueImpl::Calendar => EventQueue::Calendar(CalendarQueue::from_sorted(items)?),
            QueueImpl::Reference => EventQueue::Reference(ReferenceQueue::from_sorted(items)?),
        })
    }

    /// The active representation.
    pub fn kind(&self) -> QueueImpl {
        match self {
            EventQueue::Calendar(_) => QueueImpl::Calendar,
            EventQueue::Reference(_) => QueueImpl::Reference,
        }
    }

    /// Number of queued items.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Calendar(q) => q.len(),
            EventQueue::Reference(q) => q.len(),
        }
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queues `payload` at `(at, seq)`.
    #[inline]
    pub fn push(&mut self, at: SimTime, seq: u64, payload: T) {
        match self {
            EventQueue::Calendar(q) => q.push(at, seq, payload),
            EventQueue::Reference(q) => q.push(at, seq, payload),
        }
    }

    /// Key of the next item to pop.
    #[inline]
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        match self {
            EventQueue::Calendar(q) => q.peek_key(),
            EventQueue::Reference(q) => q.peek_key(),
        }
    }

    /// Removes and returns the minimum-`(time, seq)` item.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        match self {
            EventQueue::Calendar(q) => q.pop(),
            EventQueue::Reference(q) => q.pop(),
        }
    }

    /// Visits every queued entry in arbitrary order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (SimTime, u64, &T)> + '_> {
        match self {
            EventQueue::Calendar(q) => Box::new(q.iter()),
            EventQueue::Reference(q) => Box::new(q.iter()),
        }
    }

    /// Every queued entry in canonical `(time, seq)` order — the
    /// checkpoint serialization order.
    pub fn sorted_entries(&self) -> Vec<(SimTime, u64, &T)> {
        let mut entries: Vec<(SimTime, u64, &T)> = self.iter().collect();
        entries.sort_by_key(|&(at, seq, _)| (at, seq));
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn pops_in_time_seq_order() {
        let mut q = CalendarQueue::new();
        let mut seed = 7u64;
        let mut keys = Vec::new();
        for seq in 0..5_000u64 {
            let at = SimTime(splitmix(&mut seed) % 50_000_000_000);
            keys.push((at, seq));
            q.push(at, seq, seq);
        }
        keys.sort();
        for &(at, seq) in &keys {
            assert_eq!(q.peek_key(), Some((at, seq)));
            let (pat, pseq, payload) = q.pop().expect("item");
            assert_eq!((pat, pseq, payload), (at, seq, seq));
        }
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn duplicate_timestamps_are_fifo_by_seq() {
        let mut q = CalendarQueue::new();
        let t = SimTime(123_456_789);
        for seq in 0..100u64 {
            q.push(t, seq, seq);
        }
        for want in 0..100u64 {
            assert_eq!(q.pop().map(|(_, s, _)| s), Some(want));
        }
    }

    #[test]
    fn far_future_events_survive_wraparound() {
        // Two events more than a full rotation apart (1024 buckets ×
        // ~1 ms ≈ 1.07 s): the later one hashes onto an already-scanned
        // bucket and must still come out second, via the global scan.
        let mut q = CalendarQueue::new();
        let near = SimTime(1_000_000);
        let far = SimTime(1 << 42); // ~73 min
        q.push(far, 1, "far");
        q.push(near, 2, "near");
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("near"));
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("far"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_hold_pattern_matches_reference() {
        let mut cal = CalendarQueue::new();
        let mut reference = ReferenceQueue::new();
        let mut seed = 42u64;
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..200 {
            for _ in 0..splitmix(&mut seed) % 50 {
                seq += 1;
                let at = SimTime(now + splitmix(&mut seed) % 10_000_000_000);
                cal.push(at, seq, seq);
                reference.push(at, seq, seq);
            }
            for _ in 0..splitmix(&mut seed) % 40 {
                let a = cal.pop();
                let b = reference.pop();
                assert_eq!(a, b);
                if let Some((at, _, _)) = a {
                    now = at.0;
                }
            }
        }
        while let Some(b) = reference.pop() {
            assert_eq!(cal.pop(), Some(b));
        }
        assert!(cal.is_empty());
    }

    #[test]
    fn pushes_into_the_draining_day_stay_ordered() {
        // Drain a dense single-day burst while pushing new items into
        // the same virtual day between pops: the sorted drain bucket
        // must binary-insert them (shifting the cached tail) and keep
        // the pop order exact.
        let mut cal = CalendarQueue::new();
        let mut reference = ReferenceQueue::new();
        let base = 5_000_000u64; // one default-width day holds all offsets below
        let mut seq = 0u64;
        for i in 0..64u64 {
            seq += 1;
            let at = SimTime(base + i * 17 % 1_000);
            cal.push(at, seq, seq);
            reference.push(at, seq, seq);
        }
        for round in 0..64u64 {
            assert_eq!(cal.pop(), reference.pop());
            seq += 1;
            // Lands before the current minimum about half the time.
            let at = SimTime(base + round * 37 % 1_000);
            cal.push(at, seq, seq);
            reference.push(at, seq, seq);
        }
        while let Some(b) = reference.pop() {
            assert_eq!(cal.pop(), Some(b));
        }
        assert!(cal.is_empty());
    }

    #[test]
    fn growth_preserves_order() {
        let mut q = CalendarQueue::new();
        let mut seed = 3u64;
        // Enough to force several doublings past MIN_BUCKETS * 2.
        for seq in 0..20_000u64 {
            q.push(SimTime(splitmix(&mut seed) % 1_000_000_000), seq, ());
        }
        assert!(q.buckets.len() > MIN_BUCKETS);
        let mut prev = None;
        while let Some((at, seq, ())) = q.pop() {
            assert!(prev.is_none_or(|p| p < (at, seq)));
            prev = Some((at, seq));
        }
    }

    #[test]
    fn from_sorted_rejects_disorder_and_duplicates() {
        let ok = vec![(SimTime(1), 1, ()), (SimTime(1), 2, ()), (SimTime(9), 3, ())];
        assert!(CalendarQueue::from_sorted(ok.clone()).is_ok());
        assert!(ReferenceQueue::from_sorted(ok).is_ok());
        let unsorted = vec![(SimTime(9), 1, ()), (SimTime(1), 2, ())];
        assert!(CalendarQueue::from_sorted(unsorted.clone()).is_err());
        assert!(ReferenceQueue::from_sorted(unsorted).is_err());
        let dup = vec![(SimTime(1), 1, ()), (SimTime(1), 1, ())];
        assert!(CalendarQueue::from_sorted(dup).is_err());
    }

    #[test]
    fn sorted_entries_round_trip_through_from_sorted() {
        let mut q = EventQueue::default();
        let mut seed = 11u64;
        for seq in 0..500u64 {
            q.push(SimTime(splitmix(&mut seed) % 5_000_000_000), seq, seq);
        }
        // Consume part of the schedule so the current bucket is
        // mid-drain, then rebuild canonically.
        for _ in 0..123 {
            q.pop();
        }
        let entries: Vec<(SimTime, u64, u64)> = q
            .sorted_entries()
            .into_iter()
            .map(|(at, seq, p)| (at, seq, *p))
            .collect();
        let mut rebuilt = EventQueue::from_sorted(QueueImpl::Calendar, entries).expect("sorted");
        loop {
            let a = q.pop();
            let b = rebuilt.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
