//! Slab handle stability under chaos: the fault schedules that churn
//! instance slots hardest (crash teardown, OOM kill) must never make
//! free-list reuse alias a live `InstanceId`. Observable guarantees:
//! the slab↔id-map bijection holds at every step
//! (`check_instance_table`), a destroyed instance's id never
//! resurfaces, and ids stay strictly monotonic across slot reuse.

use std::collections::BTreeSet;

use faas::config::PlatformConfig;
use faas::platform::{GcMode, InstanceId, Platform};
use faas::FaultPlan;
use proptest::prelude::*;
use simos::{SimDuration, SimTime};

/// A load with a fault schedule biased toward crashes and OOM kills —
/// the paths that destroy slots and recycle slab entries.
#[derive(Debug, Clone)]
struct ChaosLoad {
    arrivals: Vec<(usize, u64)>,
    cache_mib: u64,
    fault_seed: u64,
    rate_pct: u32,
}

fn chaos_load() -> impl Strategy<Value = ChaosLoad> {
    (
        prop::collection::vec((0usize..20, 0u64..40_000), 10..60),
        // Small caches force eviction + OOM pressure, more slot churn.
        256u64..768,
        any::<u64>(),
        5u32..=30,
    )
        .prop_map(|(arrivals, cache_mib, fault_seed, rate_pct)| ChaosLoad {
            arrivals,
            cache_mib,
            fault_seed,
            rate_pct,
        })
}

fn build(l: &ChaosLoad) -> Platform {
    let config = PlatformConfig {
        cache_budget: l.cache_mib << 20,
        cores: 2.0,
        faults: Some(FaultPlan::uniform(l.fault_seed, l.rate_pct as f64 / 100.0)),
        ..PlatformConfig::default()
    };
    Platform::new(config, workloads::catalog(), GcMode::Vanilla, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Stepping through an arbitrary chaos run in coarse slices: at
    /// every slice boundary the instance table is a clean bijection,
    /// no destroyed id has come back to life, and every id ever
    /// observed is below the monotonic allocation cursor.
    #[test]
    fn destroyed_ids_never_resurface_under_chaos(l in chaos_load()) {
        let mut p = build(&l);
        let mut sorted = l.arrivals.clone();
        sorted.sort_by_key(|(_, t)| *t);
        for &(f, t_ms) in &sorted {
            p.submit(SimTime(t_ms * 1_000_000), f);
        }
        let mut ever_seen: BTreeSet<InstanceId> = BTreeSet::new();
        let mut dead: BTreeSet<InstanceId> = BTreeSet::new();
        let horizon = SimTime(40_000_000_000) + SimDuration::from_secs(600);
        let mut t = SimTime::ZERO;
        while t < horizon {
            t = SimTime(t.0 + 500_000_000);
            p.run_until(t.min(horizon));
            p.check_instance_table().expect("slab/id-map bijection broke");
            let live: BTreeSet<InstanceId> =
                p.instance_uss().iter().map(|(id, _)| *id).collect();
            for id in &live {
                prop_assert!(
                    !dead.contains(id),
                    "destroyed instance {id:?} resurfaced — slot reuse aliased a live id"
                );
            }
            // Anything previously seen but no longer live was
            // destroyed; its id must stay dead forever.
            for id in ever_seen.difference(&live) {
                dead.insert(*id);
            }
            ever_seen.extend(live);
        }
        prop_assert_eq!(p.in_flight(), 0, "chaos run did not drain");
        prop_assert!(p.shutdown().is_ok(), "teardown accounting did not balance");
        prop_assert_eq!(p.instance_count(), 0);
        p.check_instance_table().expect("table not clean after shutdown");
    }
}
