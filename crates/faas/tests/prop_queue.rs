//! Property tests for the calendar event queue: an arbitrary
//! interleaved schedule must pop in exactly the `(time, seq)` order of
//! the binary-heap reference oracle — including duplicate timestamps
//! and far-future bucket wraparound — and the platform's trajectory
//! and checkpoint bytes must be invariant under the representation
//! switch, even for a checkpoint captured mid-drain.

use faas::config::PlatformConfig;
use faas::platform::{GcMode, Platform};
use faas::queue::{CalendarQueue, QueueImpl, ReferenceQueue};
use proptest::prelude::*;
use simos::{SimDuration, SimTime};

/// Timestamps that stress every queue regime: the dense millisecond
/// band the platform actually schedules in, exact duplicates (FIFO by
/// seq), the current bucket (zero), and far-future events more than a
/// full bucket-array rotation away (wraparound + global-scan path).
fn arrival() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..10_000_000_000,
        0u64..10_000_000_000,
        Just(123_456_789u64),
        Just(0u64),
        (1u64 << 40)..(1u64 << 43),
    ]
}

/// Alternating push-bursts and pop-runs: the event loop's hold
/// pattern, where the cursor chases the current virtual day.
fn schedule() -> impl Strategy<Value = Vec<(Vec<u64>, usize)>> {
    prop::collection::vec((prop::collection::vec(arrival(), 0..20), 0usize..25), 1..30)
}

#[derive(Debug, Clone)]
struct Load {
    /// `(function index, arrival offset ms)` pairs.
    arrivals: Vec<(usize, u64)>,
    cache_mib: u64,
    cores: u64,
    eager: bool,
}

fn load() -> impl Strategy<Value = Load> {
    (
        prop::collection::vec((0usize..20, 0u64..60_000), 1..40),
        384u64..2048,
        2u64..5,
        any::<bool>(),
    )
        .prop_map(|(arrivals, cache_mib, cores, eager)| Load {
            arrivals,
            cache_mib,
            cores,
            eager,
        })
}

fn build(l: &Load, queue: QueueImpl) -> Platform {
    let config = PlatformConfig {
        cache_budget: l.cache_mib << 20,
        cores: l.cores as f64,
        ..PlatformConfig::default()
    };
    let mode = if l.eager { GcMode::Eager } else { GcMode::Vanilla };
    let mut p = Platform::new(config, workloads::catalog(), mode, None);
    p.set_queue_impl(queue).expect("empty queue converts");
    p
}

fn submit_all(p: &mut Platform, l: &Load) {
    let mut sorted = l.arrivals.clone();
    sorted.sort_by_key(|(_, t)| *t);
    for &(f, t_ms) in &sorted {
        p.submit(SimTime(t_ms * 1_000_000), f);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The calendar queue is observationally identical to the heap:
    /// same peek, same pop, at every step of an arbitrary interleaved
    /// schedule, and both drain empty together.
    #[test]
    fn calendar_pops_exactly_like_the_reference_heap(batches in schedule()) {
        let mut cal = CalendarQueue::new();
        let mut heap = ReferenceQueue::new();
        let mut seq = 0u64;
        for (pushes, pops) in batches {
            for at in pushes {
                seq += 1;
                cal.push(SimTime(at), seq, seq);
                heap.push(SimTime(at), seq, seq);
            }
            for _ in 0..pops {
                prop_assert_eq!(cal.peek_key(), heap.peek_key());
                prop_assert_eq!(cal.pop(), heap.pop());
            }
        }
        while !heap.is_empty() {
            prop_assert_eq!(cal.pop(), heap.pop());
        }
        prop_assert!(cal.is_empty());
        prop_assert_eq!(cal.pop(), None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whole-platform oracle: the same load on the calendar queue and
    /// on the reference heap produces byte-identical checkpoints at an
    /// arbitrary cut and at quiescence — the representation swap is
    /// invisible to the simulation.
    #[test]
    fn platform_trajectory_is_queue_impl_invariant(
        l in load(),
        cut_ms in 0u64..70_000,
    ) {
        let mut cal = build(&l, QueueImpl::Calendar);
        let mut reference = build(&l, QueueImpl::Reference);
        submit_all(&mut cal, &l);
        submit_all(&mut reference, &l);
        let cut = SimTime(cut_ms * 1_000_000);
        cal.run_until(cut);
        reference.run_until(cut);
        prop_assert_eq!(
            cal.checkpoint(),
            reference.checkpoint(),
            "mid-run checkpoints diverged between queue impls"
        );
        let horizon = SimTime(60_000_000_000) + SimDuration::from_secs(600);
        cal.run_until(horizon);
        reference.run_until(horizon);
        prop_assert_eq!(cal.checkpoint(), reference.checkpoint());
        prop_assert_eq!(cal.stats().completed, reference.stats().completed);
    }
}

/// A checkpoint captured mid-drain — several events still pending in
/// the current ~1 ms bucket — restores through the canonical
/// `from_sorted` constructor on either representation, reproduces the
/// identical bytes, and continues identically.
#[test]
fn mid_drain_checkpoint_round_trips_on_both_queue_impls() {
    let l = Load {
        // A burst of same-millisecond arrivals: at any cut inside the
        // burst the current bucket is non-empty.
        arrivals: (0..24).map(|i| (i % 7, 1_000 + (i as u64 % 3))).collect(),
        cache_mib: 768,
        cores: 2,
        eager: false,
    };
    let mut original = build(&l, QueueImpl::Calendar);
    submit_all(&mut original, &l);
    // Cut inside the burst, mid-millisecond, while work is in flight.
    original.run_until(SimTime(1_001_500_000));
    assert!(original.in_flight() > 0, "cut must land mid-drain");
    let bytes = original.checkpoint();

    for kind in [QueueImpl::Calendar, QueueImpl::Reference] {
        let mut restored = build(&l, kind);
        restored.restore(&bytes).expect("mid-drain checkpoint restores");
        assert_eq!(restored.queue_impl(), kind, "restore must not switch impls");
        assert_eq!(
            restored.checkpoint(),
            bytes,
            "restore is not the codec's inverse on {kind:?}"
        );
        let horizon = SimTime(60_000_000_000);
        restored.run_until(horizon);
        let mut truth = build(&l, QueueImpl::Calendar);
        truth.restore(&bytes).expect("restores");
        truth.run_until(horizon);
        assert_eq!(
            restored.checkpoint(),
            truth.checkpoint(),
            "continuation diverged on {kind:?}"
        );
    }
}

/// `set_queue_impl` mid-run carries the full pending schedule across
/// representations without reordering anything.
#[test]
fn switching_queue_impl_mid_run_preserves_the_schedule() {
    let l = Load {
        arrivals: (0..40).map(|i| (i % 11, (i as u64) * 37 % 5_000)).collect(),
        cache_mib: 1024,
        cores: 3,
        eager: true,
    };
    let mut switching = build(&l, QueueImpl::Calendar);
    let mut straight = build(&l, QueueImpl::Calendar);
    submit_all(&mut switching, &l);
    submit_all(&mut straight, &l);
    for (i, cut_ms) in [700u64, 1_900, 3_400, 6_000].iter().enumerate() {
        switching.run_until(SimTime(cut_ms * 1_000_000));
        straight.run_until(SimTime(cut_ms * 1_000_000));
        let kind = if i % 2 == 0 {
            QueueImpl::Reference
        } else {
            QueueImpl::Calendar
        };
        switching.set_queue_impl(kind).expect("live queue converts");
        assert_eq!(switching.queue_impl(), kind);
    }
    let horizon = SimTime(60_000_000_000);
    switching.run_until(horizon);
    straight.run_until(horizon);
    assert_eq!(switching.checkpoint(), straight.checkpoint());
}
