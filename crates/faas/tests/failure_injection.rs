//! Failure-injection tests for the platform: the awkward interleavings
//! the paper's §4.2 design explicitly allows ("when OpenWhisk
//! determines to evict an instance, it does not need to consider if the
//! instance is under memory reclamation").

use faas::config::PlatformConfig;
use faas::manager::{FrozenView, MemoryManager, ReclaimProfile};
use faas::platform::{GcMode, InstanceId, Platform};
use faas::{FailReason, FaultPlan};
use simos::{SimDuration, SimTime};

/// A manager that reclaims everything it sees, every sweep, remembering
/// what happened to it.
struct GreedyManager {
    reclaimed: Vec<InstanceId>,
    destroyed: Vec<InstanceId>,
    evictions: u64,
}

impl GreedyManager {
    fn new() -> GreedyManager {
        GreedyManager {
            reclaimed: Vec::new(),
            destroyed: Vec::new(),
            evictions: 0,
        }
    }
}

impl MemoryManager for GreedyManager {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn select_reclaims(
        &mut self,
        _now: SimTime,
        _cache_budget: u64,
        _cache_used: u64,
        frozen: &[FrozenView],
    ) -> Vec<InstanceId> {
        frozen.iter().filter(|f| !f.reclaimed).map(|f| f.id).collect()
    }

    fn note_eviction(&mut self, _now: SimTime, _function: &str) {
        self.evictions += 1;
    }

    fn note_destroyed(&mut self, id: InstanceId) {
        self.destroyed.push(id);
    }

    fn note_reclaimed(
        &mut self,
        _now: SimTime,
        id: InstanceId,
        _function: &str,
        _profile: ReclaimProfile,
    ) {
        self.reclaimed.push(id);
    }
}

fn tight_config() -> PlatformConfig {
    PlatformConfig {
        // Barely enough for one boot plus a couple of frozen
        // instances: evictions are constant, and they race the greedy
        // manager's reclamations.
        cache_budget: 256 << 20,
        cores: 3.0,
        // Sweep often so reclamations overlap instance churn.
        sweep_interval: SimDuration::from_millis(50),
        ..PlatformConfig::default()
    }
}

/// Evictions during reclamation must not corrupt platform state: every
/// request completes, accounting balances, and the simulation does not
/// panic on stale reclaim-done events.
#[test]
fn eviction_during_reclamation_is_safe() {
    let mut p = Platform::new(
        tight_config(),
        workloads::catalog(),
        GcMode::Vanilla,
        Some(Box::new(GreedyManager::new())),
    );
    // A rotating mix of functions so the cache constantly churns.
    let names = ["file-hash", "sort", "fft", "matrix", "factor", "pi", "unionfind", "dynamic-html"];
    let mut t = SimTime::ZERO;
    let mut submitted = 0;
    for round in 0..30u64 {
        for (i, name) in names.iter().enumerate() {
            let idx = p.function_index(name).expect("catalog");
            p.submit(t + SimDuration::from_millis(i as u64 * 40), idx);
            submitted += 1;
        }
        t += SimDuration::from_millis(400);
        let _ = round;
    }
    p.run_until(t + SimDuration::from_secs(120));
    assert_eq!(p.stats().completed, submitted, "requests lost under churn");
    assert!(p.stats().evictions > 0, "no eviction pressure generated");
    assert!(p.stats().reclamations > 0, "no reclamations raced them");
    assert!(p.cache_used() <= 256 << 20, "cache accounting drifted");
}

/// A manager that asks to reclaim instances that no longer exist (or
/// are running) must be tolerated: the platform skips them.
struct LyingManager;

impl MemoryManager for LyingManager {
    fn name(&self) -> &'static str {
        "liar"
    }

    fn select_reclaims(
        &mut self,
        _now: SimTime,
        _cache_budget: u64,
        _cache_used: u64,
        frozen: &[FrozenView],
    ) -> Vec<InstanceId> {
        // Real candidates plus garbage ids.
        let mut picks: Vec<InstanceId> = frozen.iter().map(|f| f.id).collect();
        picks.push(InstanceId(u64::MAX));
        picks.push(InstanceId(u64::MAX - 1));
        picks
    }

    fn note_eviction(&mut self, _now: SimTime, _function: &str) {}
    fn note_destroyed(&mut self, _id: InstanceId) {}
    fn note_reclaimed(
        &mut self,
        _now: SimTime,
        _id: InstanceId,
        _function: &str,
        _profile: ReclaimProfile,
    ) {
    }
}

#[test]
fn bogus_reclaim_requests_are_ignored() {
    let mut p = Platform::new(
        tight_config(),
        workloads::catalog(),
        GcMode::Vanilla,
        Some(Box::new(LyingManager)),
    );
    let idx = p.function_index("file-hash").expect("catalog");
    for i in 0..10u64 {
        p.submit(SimTime(i * 2_000_000_000), idx);
    }
    p.run_until(SimTime(60_000_000_000));
    assert_eq!(p.stats().completed, 10);
}

/// Reclaimed instances must serve later requests correctly even when
/// the reclamation raced a thaw attempt (the platform skips non-frozen
/// instances at reclaim start).
#[test]
fn reclaimed_instances_keep_serving() {
    let mut p = Platform::new(
        tight_config(),
        workloads::catalog(),
        GcMode::Vanilla,
        Some(Box::new(GreedyManager::new())),
    );
    let idx = p.function_index("unionfind").expect("catalog");
    // Gaps long enough for a reclaim between every pair of requests.
    for i in 0..20u64 {
        p.submit(SimTime(i * 3_000_000_000), idx);
    }
    p.run_until(SimTime(120_000_000_000));
    assert_eq!(p.stats().completed, 20);
    assert!(p.stats().reclamations >= 5, "instances were reclaimed between uses");
    // The warm instance survived throughout: exactly one cold boot.
    assert_eq!(p.stats().cold_boots, 1, "reclamation must not force cold boots");
}

/// A function whose estimated boot footprint exceeds the *entire*
/// cache budget must be rejected with a typed failure, not spun
/// through an evict-everything-and-retry loop.
#[test]
fn oversized_boot_is_rejected_not_evict_looped() {
    let config = PlatformConfig {
        // Smaller than the 64 MiB initial boot-footprint estimate:
        // no amount of eviction can admit a cold boot.
        cache_budget: 32 << 20,
        instance_budget: 32 << 20,
        ..PlatformConfig::default()
    };
    let mut p = Platform::new(config, workloads::catalog(), GcMode::Vanilla, None);
    let idx = p.function_index("file-hash").expect("catalog");
    p.submit(SimTime::ZERO, idx);
    p.run_until(SimTime(300_000_000_000));
    let (submitted, completed, failed) = p.request_totals();
    assert_eq!((submitted, completed, failed), (1, 0, 1));
    assert_eq!(p.stats().rejected_too_large, 1);
    assert_eq!(p.stats().evictions, 0, "rejection must not churn the cache");
    assert_eq!(p.stats().retries, 0, "a structural rejection is not retryable");
    assert_eq!(p.failure_reasons(), vec![FailReason::TooLargeForCache]);
    assert_eq!(p.instance_count(), 0);
    assert_eq!(p.in_flight(), 0);
    p.shutdown().expect("clean teardown after rejection");
}

fn always_boot_fail() -> FaultPlan {
    FaultPlan {
        seed: 1,
        boot_fail: 1.0,
        crash: 0.0,
        thaw_fail: 0.0,
        reclaim_fail: 0.0,
        oom_kill: 0.0,
    }
}

/// A single request whose every boot attempt dies walks the whole
/// retry ladder, then fails with a typed reason once the budget is
/// spent. One request alone cannot reach the breaker threshold, so
/// the counts are exact.
#[test]
fn boot_failure_exhausts_retry_budget() {
    let config = PlatformConfig {
        faults: Some(always_boot_fail()),
        ..PlatformConfig::default()
    };
    let max_retries = config.max_retries as u64;
    let mut p = Platform::new(config, workloads::catalog(), GcMode::Vanilla, None);
    let idx = p.function_index("file-hash").expect("catalog");
    p.submit(SimTime::ZERO, idx);
    p.run_until(SimTime(300_000_000_000));
    let (submitted, completed, failed) = p.request_totals();
    assert_eq!((submitted, completed, failed), (1, 0, 1));
    let s = p.stats();
    assert_eq!(s.boot_failures, max_retries + 1, "initial attempt plus every retry");
    assert_eq!(s.retries, max_retries);
    assert_eq!(s.retry_gave_up, 1, "retry budget exhaustion must be recorded");
    assert_eq!(s.breaker_trips, 0, "one request stays under the breaker threshold");
    assert_eq!(p.failure_reasons(), vec![FailReason::BootFailure]);
    assert_eq!(p.in_flight(), 0);
    p.shutdown().expect("clean teardown after failures");
}

/// Sustained boot failure across requests trips the per-function
/// circuit breaker, which then fast-fails follow-up requests instead
/// of burning boot attempts.
#[test]
fn sustained_boot_failure_trips_breaker() {
    let config = PlatformConfig {
        faults: Some(always_boot_fail()),
        ..PlatformConfig::default()
    };
    let mut p = Platform::new(config, workloads::catalog(), GcMode::Vanilla, None);
    let idx = p.function_index("file-hash").expect("catalog");
    for i in 0..5u64 {
        p.submit(SimTime(i * 1_000_000_000), idx);
    }
    // Probe mid-run: sustained failure must leave the breaker open.
    p.run_until(SimTime(6_000_000_000));
    assert!(p.breaker_open(idx), "breaker should be open under sustained failure");
    p.run_until(SimTime(300_000_000_000));
    let (submitted, completed, failed) = p.request_totals();
    assert_eq!((submitted, completed, failed), (5, 0, 5));
    let s = p.stats();
    assert!(s.boot_failures >= 5, "the breaker needs 5 real failures to trip");
    assert!(s.retries >= 1, "boot failures must be retried before the trip");
    assert!(s.breaker_trips >= 1, "5 consecutive failures must trip the breaker");
    assert!(s.breaker_fast_fails >= 1, "requests under an open breaker fast-fail");
    let reasons = p.failure_reasons();
    assert!(reasons.contains(&FailReason::BreakerOpen), "reasons: {reasons:?}");
    assert_eq!(p.in_flight(), 0);
    p.shutdown().expect("clean teardown after failures");
}

/// With a flaky (seeded, probabilistic) boot the breaker trips, waits
/// out its cooldown, and recovers through a half-open probe: requests
/// complete *after* a trip, and the run still terminates cleanly.
#[test]
fn breaker_recovers_after_cooldown() {
    let config = PlatformConfig {
        breaker_threshold: 2,
        breaker_cooldown: SimDuration::from_millis(500),
        faults: Some(FaultPlan {
            seed: 5,
            boot_fail: 0.5,
            crash: 0.0,
            thaw_fail: 0.0,
            reclaim_fail: 0.0,
            oom_kill: 0.0,
        }),
        ..PlatformConfig::default()
    };
    let mut p = Platform::new(config, workloads::catalog(), GcMode::Vanilla, None);
    let idx = p.function_index("file-hash").expect("catalog");
    for i in 0..40u64 {
        p.submit(SimTime(i * 2_000_000_000), idx);
    }
    p.run_until(SimTime(400_000_000_000));
    let (submitted, completed, failed) = p.request_totals();
    assert_eq!(completed + failed, submitted, "requests leaked");
    assert_eq!(p.in_flight(), 0);
    let s = p.stats();
    assert!(s.breaker_trips >= 1, "a 50% boot-failure rate must trip threshold 2");
    assert!(
        completed > 0,
        "the breaker must recover via half-open probes, not stay latched"
    );
    assert!(s.boot_failures > 0, "the fault plan injected nothing");
    p.shutdown().expect("clean teardown");
}

/// Thaw failures degrade a warm start into a cold boot (destroy the
/// corrupt instance, fall through to the cold path) — they must never
/// lose the request.
#[test]
fn thaw_failures_degrade_to_cold_boots() {
    let config = PlatformConfig {
        faults: Some(FaultPlan {
            seed: 3,
            boot_fail: 0.0,
            crash: 0.0,
            thaw_fail: 1.0,
            reclaim_fail: 0.0,
            oom_kill: 0.0,
        }),
        ..PlatformConfig::default()
    };
    let mut p = Platform::new(config, workloads::catalog(), GcMode::Vanilla, None);
    let idx = p.function_index("file-hash").expect("catalog");
    for i in 0..10u64 {
        p.submit(SimTime(i * 3_000_000_000), idx);
    }
    p.run_until(SimTime(300_000_000_000));
    let (submitted, completed, failed) = p.request_totals();
    assert_eq!((submitted, completed, failed), (10, 10, 0), "thaw failure lost a request");
    let s = p.stats();
    assert!(s.thaw_failures > 0, "no thaw ever failed at rate 1.0");
    assert_eq!(
        s.cold_boots,
        s.thaw_failures + 1,
        "every thaw failure must fall through to exactly one cold boot"
    );
    assert_eq!(s.warm_starts, 0, "a 100% thaw-failure rate leaves no warm path");
    p.shutdown().expect("clean teardown");
}

/// Reclaim failures leave the charge standing and the instance frozen;
/// requests keep completing and accounting stays balanced even when
/// *every* reclamation fails.
#[test]
fn reclaim_failures_never_lose_requests() {
    let config = PlatformConfig {
        cache_budget: 256 << 20,
        sweep_interval: SimDuration::from_millis(50),
        faults: Some(FaultPlan {
            seed: 9,
            boot_fail: 0.0,
            crash: 0.0,
            thaw_fail: 0.0,
            reclaim_fail: 1.0,
            oom_kill: 0.0,
        }),
        ..PlatformConfig::default()
    };
    let mut p = Platform::new(
        config,
        workloads::catalog(),
        GcMode::Vanilla,
        Some(Box::new(GreedyManager::new())),
    );
    let idx = p.function_index("file-hash").expect("catalog");
    for i in 0..15u64 {
        p.submit(SimTime(i * 2_000_000_000), idx);
    }
    p.run_until(SimTime(300_000_000_000));
    let (submitted, completed, failed) = p.request_totals();
    assert_eq!((submitted, completed, failed), (15, 15, 0));
    let s = p.stats();
    assert!(s.reclaim_failures > 0, "the greedy manager never drew a reclaim failure");
    assert_eq!(s.reclamations, 0, "a 100% failure rate must complete no reclamation");
    p.shutdown().expect("failed reclaims must not corrupt teardown accounting");
}
