//! Failure-injection tests for the platform: the awkward interleavings
//! the paper's §4.2 design explicitly allows ("when OpenWhisk
//! determines to evict an instance, it does not need to consider if the
//! instance is under memory reclamation").

use faas::config::PlatformConfig;
use faas::manager::{FrozenView, MemoryManager, ReclaimProfile};
use faas::platform::{GcMode, InstanceId, Platform};
use simos::{SimDuration, SimTime};

/// A manager that reclaims everything it sees, every sweep, remembering
/// what happened to it.
struct GreedyManager {
    reclaimed: Vec<InstanceId>,
    destroyed: Vec<InstanceId>,
    evictions: u64,
}

impl GreedyManager {
    fn new() -> GreedyManager {
        GreedyManager {
            reclaimed: Vec::new(),
            destroyed: Vec::new(),
            evictions: 0,
        }
    }
}

impl MemoryManager for GreedyManager {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn select_reclaims(
        &mut self,
        _now: SimTime,
        _cache_budget: u64,
        _cache_used: u64,
        frozen: &[FrozenView],
    ) -> Vec<InstanceId> {
        frozen.iter().filter(|f| !f.reclaimed).map(|f| f.id).collect()
    }

    fn note_eviction(&mut self, _now: SimTime, _function: &str) {
        self.evictions += 1;
    }

    fn note_destroyed(&mut self, id: InstanceId) {
        self.destroyed.push(id);
    }

    fn note_reclaimed(
        &mut self,
        _now: SimTime,
        id: InstanceId,
        _function: &str,
        _profile: ReclaimProfile,
    ) {
        self.reclaimed.push(id);
    }
}

fn tight_config() -> PlatformConfig {
    PlatformConfig {
        // Barely enough for one boot plus a couple of frozen
        // instances: evictions are constant, and they race the greedy
        // manager's reclamations.
        cache_budget: 256 << 20,
        cores: 3.0,
        // Sweep often so reclamations overlap instance churn.
        sweep_interval: SimDuration::from_millis(50),
        ..PlatformConfig::default()
    }
}

/// Evictions during reclamation must not corrupt platform state: every
/// request completes, accounting balances, and the simulation does not
/// panic on stale reclaim-done events.
#[test]
fn eviction_during_reclamation_is_safe() {
    let mut p = Platform::new(
        tight_config(),
        workloads::catalog(),
        GcMode::Vanilla,
        Some(Box::new(GreedyManager::new())),
    );
    // A rotating mix of functions so the cache constantly churns.
    let names = ["file-hash", "sort", "fft", "matrix", "factor", "pi", "unionfind", "dynamic-html"];
    let mut t = SimTime::ZERO;
    let mut submitted = 0;
    for round in 0..30u64 {
        for (i, name) in names.iter().enumerate() {
            let idx = p.function_index(name).expect("catalog");
            p.submit(t + SimDuration::from_millis(i as u64 * 40), idx);
            submitted += 1;
        }
        t += SimDuration::from_millis(400);
        let _ = round;
    }
    p.run_until(t + SimDuration::from_secs(120));
    assert_eq!(p.stats().completed, submitted, "requests lost under churn");
    assert!(p.stats().evictions > 0, "no eviction pressure generated");
    assert!(p.stats().reclamations > 0, "no reclamations raced them");
    assert!(p.cache_used() <= 256 << 20, "cache accounting drifted");
}

/// A manager that asks to reclaim instances that no longer exist (or
/// are running) must be tolerated: the platform skips them.
struct LyingManager;

impl MemoryManager for LyingManager {
    fn name(&self) -> &'static str {
        "liar"
    }

    fn select_reclaims(
        &mut self,
        _now: SimTime,
        _cache_budget: u64,
        _cache_used: u64,
        frozen: &[FrozenView],
    ) -> Vec<InstanceId> {
        // Real candidates plus garbage ids.
        let mut picks: Vec<InstanceId> = frozen.iter().map(|f| f.id).collect();
        picks.push(InstanceId(u64::MAX));
        picks.push(InstanceId(u64::MAX - 1));
        picks
    }

    fn note_eviction(&mut self, _now: SimTime, _function: &str) {}
    fn note_destroyed(&mut self, _id: InstanceId) {}
    fn note_reclaimed(
        &mut self,
        _now: SimTime,
        _id: InstanceId,
        _function: &str,
        _profile: ReclaimProfile,
    ) {
    }
}

#[test]
fn bogus_reclaim_requests_are_ignored() {
    let mut p = Platform::new(
        tight_config(),
        workloads::catalog(),
        GcMode::Vanilla,
        Some(Box::new(LyingManager)),
    );
    let idx = p.function_index("file-hash").expect("catalog");
    for i in 0..10u64 {
        p.submit(SimTime(i * 2_000_000_000), idx);
    }
    p.run_until(SimTime(60_000_000_000));
    assert_eq!(p.stats().completed, 10);
}

/// Reclaimed instances must serve later requests correctly even when
/// the reclamation raced a thaw attempt (the platform skips non-frozen
/// instances at reclaim start).
#[test]
fn reclaimed_instances_keep_serving() {
    let mut p = Platform::new(
        tight_config(),
        workloads::catalog(),
        GcMode::Vanilla,
        Some(Box::new(GreedyManager::new())),
    );
    let idx = p.function_index("unionfind").expect("catalog");
    // Gaps long enough for a reclaim between every pair of requests.
    for i in 0..20u64 {
        p.submit(SimTime(i * 3_000_000_000), idx);
    }
    p.run_until(SimTime(120_000_000_000));
    assert_eq!(p.stats().completed, 20);
    assert!(p.stats().reclamations >= 5, "instances were reclaimed between uses");
    // The warm instance survived throughout: exactly one cold boot.
    assert_eq!(p.stats().cold_boots, 1, "reclamation must not force cold boots");
}
