//! Property tests for checkpoint/restore: at an arbitrary cut point in
//! an arbitrary load, a checkpoint must round-trip to the identical
//! byte string, the restored platform must continue exactly like the
//! original, and the restored state must satisfy the memory-metric and
//! request-conservation invariants.

use faas::config::PlatformConfig;
use faas::platform::{GcMode, Platform};
use proptest::prelude::*;
use simos::metrics::{pss, rss, uss};
use simos::{SimDuration, SimTime};

/// A randomized load pattern (mirrors `prop_platform.rs`).
#[derive(Debug, Clone)]
struct Load {
    /// `(function index, arrival offset ms)` pairs.
    arrivals: Vec<(usize, u64)>,
    cache_mib: u64,
    cores: u64,
    eager: bool,
}

fn load() -> impl Strategy<Value = Load> {
    (
        prop::collection::vec((0usize..20, 0u64..60_000), 1..40),
        384u64..2048,
        2u64..5,
        any::<bool>(),
    )
        .prop_map(|(arrivals, cache_mib, cores, eager)| Load {
            arrivals,
            cache_mib,
            cores,
            eager,
        })
}

fn build(l: &Load) -> Platform {
    let config = PlatformConfig {
        cache_budget: l.cache_mib << 20,
        cores: l.cores as f64,
        ..PlatformConfig::default()
    };
    let mode = if l.eager { GcMode::Eager } else { GcMode::Vanilla };
    Platform::new(config, workloads::catalog(), mode, None)
}

fn submit_all(p: &mut Platform, l: &Load) {
    let mut sorted = l.arrivals.clone();
    sorted.sort_by_key(|(_, t)| *t);
    for &(f, t_ms) in &sorted {
        p.submit(SimTime(t_ms * 1_000_000), f);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpointing at an arbitrary mid-run cut is invisible: the
    /// restored platform re-produces the identical checkpoint bytes,
    /// and running both to quiescence ends in identical final states.
    #[test]
    fn round_trip_at_arbitrary_cut_is_identity(l in load(), cut_ms in 0u64..70_000) {
        let mut original = build(&l);
        submit_all(&mut original, &l);
        original.run_until(SimTime(cut_ms * 1_000_000));
        let bytes = original.checkpoint();

        let mut restored = build(&l);
        restored.restore(&bytes).expect("self-produced checkpoint restores");
        prop_assert_eq!(
            restored.checkpoint(),
            bytes.clone(),
            "restore is not the codec's inverse"
        );

        // Continue both to quiescence: the trajectories must coincide.
        let horizon = SimTime(60_000_000_000) + SimDuration::from_secs(600);
        original.run_until(horizon);
        restored.run_until(horizon);
        prop_assert_eq!(
            restored.checkpoint(),
            original.checkpoint(),
            "restored run diverged from the original"
        );
        prop_assert_eq!(restored.stats().completed, original.stats().completed);
    }

    /// A restored platform satisfies the same physical invariants as a
    /// live one: per-process USS ≤ PSS ≤ RSS, and request conservation
    /// (submitted = completed + failed + in flight).
    #[test]
    fn restore_preserves_memory_and_conservation_invariants(
        l in load(),
        cut_ms in 0u64..70_000,
    ) {
        let mut original = build(&l);
        submit_all(&mut original, &l);
        original.run_until(SimTime(cut_ms * 1_000_000));
        let bytes = original.checkpoint();

        let mut p = build(&l);
        p.restore(&bytes).expect("self-produced checkpoint restores");

        let sys = p.system();
        for pid in sys.pids().collect::<Vec<_>>() {
            let (u, ps, r) = (uss(sys, pid), pss(sys, pid), rss(sys, pid));
            prop_assert!(
                u as f64 <= ps + 1e-6 && ps <= r as f64 + 1e-6,
                "pid {:?}: USS {} <= PSS {} <= RSS {} violated after restore",
                pid, u, ps, r
            );
        }
        let (submitted, completed, failed) = p.request_totals();
        prop_assert_eq!(
            completed + failed + p.in_flight(),
            submitted,
            "request conservation violated after restore"
        );

        // And the restored run still drains and tears down clean.
        p.run_until(SimTime(60_000_000_000) + SimDuration::from_secs(600));
        prop_assert_eq!(p.in_flight(), 0);
        prop_assert!(p.shutdown().is_ok(), "teardown after restore did not balance");
        prop_assert_eq!(p.cache_used(), 0);
    }
}
