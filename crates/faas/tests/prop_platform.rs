//! Property tests for the platform: random request patterns against
//! random (small) configurations must preserve the accounting and
//! completion invariants.

use faas::config::PlatformConfig;
use faas::platform::{GcMode, Platform};
use faas::FaultPlan;
use proptest::prelude::*;
use simos::{SimDuration, SimTime};

/// A randomized load pattern.
#[derive(Debug, Clone)]
struct Load {
    /// `(function index, arrival offset ms)` pairs.
    arrivals: Vec<(usize, u64)>,
    cache_mib: u64,
    cores: u64,
    eager: bool,
}

fn load() -> impl Strategy<Value = Load> {
    (
        prop::collection::vec((0usize..20, 0u64..60_000), 1..40),
        384u64..2048,
        2u64..5,
        any::<bool>(),
    )
        .prop_map(|(arrivals, cache_mib, cores, eager)| Load {
            arrivals,
            cache_mib,
            cores,
            eager,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every submitted request eventually completes, exactly once, no
    /// matter the interleaving of boots, freezes, and evictions; cache
    /// accounting never exceeds the budget by more than the transient
    /// running-growth allowance; acquisitions balance.
    #[test]
    fn all_requests_complete_exactly_once(l in load()) {
        let config = PlatformConfig {
            cache_budget: l.cache_mib << 20,
            cores: l.cores as f64,
            ..PlatformConfig::default()
        };
        let mode = if l.eager { GcMode::Eager } else { GcMode::Vanilla };
        let mut p = Platform::new(config, workloads::catalog(), mode, None);
        let mut sorted = l.arrivals.clone();
        sorted.sort_by_key(|(_, t)| *t);
        for &(f, t_ms) in &sorted {
            p.submit(SimTime(t_ms * 1_000_000), f);
        }
        // Generous horizon: every chain and queue drains.
        p.run_until(SimTime(60_000_000_000) + SimDuration::from_secs(600));
        prop_assert_eq!(p.stats().completed, sorted.len() as u64, "requests lost");
        prop_assert_eq!(p.stats().submitted, sorted.len() as u64);
        // Acquisition accounting: every stage execution was either a
        // warm start or a cold boot; chains multiply the stages.
        let stage_count: u64 = sorted
            .iter()
            .map(|(f, _)| p.catalog()[*f].chain_len as u64)
            .sum();
        prop_assert_eq!(
            p.stats().warm_starts + p.stats().cold_boots,
            stage_count,
            "acquisitions do not balance stage executions"
        );
        // All instances end frozen (nothing stuck running).
        prop_assert_eq!(p.frozen_count(), p.instance_count(), "instance stuck mid-state");
        // The cache accounting tracks the instances' measured USS.
        // Charges are freeze-time snapshots, so they can lag the live
        // value by up to one library set per instance: when a second
        // same-language instance boots (or the last sharer dies), the
        // shared-library pages move between the private and shared
        // USS categories of *already frozen* instances. Anything beyond
        // that bound is a genuine accounting leak.
        let measured: u64 = p.instance_uss().iter().map(|(_, u)| *u).sum();
        let slack = p.instance_count() as u64 * (80 << 20);
        let (lo, hi) = (measured.saturating_sub(slack), measured + slack);
        prop_assert!(
            (lo..=hi).contains(&p.cache_used()),
            "cache accounting drifted: charged {} vs measured {}",
            p.cache_used(),
            measured
        );
    }

    /// Under an arbitrary seeded fault schedule every request still
    /// terminates exactly once (arrivals == completions + failures),
    /// and after the drain the platform tears down to zero cache
    /// occupancy and an empty process table.
    #[test]
    fn faults_conserve_requests_and_drain_to_zero(
        l in load(),
        fault_seed in any::<u64>(),
        rate_pct in 0u32..=25,
    ) {
        let config = PlatformConfig {
            cache_budget: l.cache_mib << 20,
            cores: l.cores as f64,
            faults: Some(FaultPlan::uniform(fault_seed, rate_pct as f64 / 100.0)),
            ..PlatformConfig::default()
        };
        let mode = if l.eager { GcMode::Eager } else { GcMode::Vanilla };
        let mut p = Platform::new(config, workloads::catalog(), mode, None);
        let mut sorted = l.arrivals.clone();
        sorted.sort_by_key(|(_, t)| *t);
        for &(f, t_ms) in &sorted {
            p.submit(SimTime(t_ms * 1_000_000), f);
        }
        // Horizon past the last possible retry: no retry is scheduled
        // beyond its arrival plus the request deadline, so last-arrival
        // + deadline + backoff-cap + queue slack guarantees quiescence.
        p.run_until(SimTime(60_000_000_000) + SimDuration::from_secs(600));
        let (submitted, completed, failed) = p.request_totals();
        prop_assert_eq!(submitted, sorted.len() as u64);
        prop_assert_eq!(
            completed + failed,
            submitted,
            "request conservation violated: {} + {} != {}",
            completed,
            failed,
            submitted
        );
        prop_assert_eq!(p.in_flight(), 0, "requests still in flight after the drain");
        // Teardown: shutdown() destroys every instance and errors if
        // the cache charge or the process table is nonzero.
        prop_assert!(p.shutdown().is_ok(), "teardown accounting did not balance");
        prop_assert_eq!(p.cache_used(), 0, "cache occupancy nonzero after drain");
        prop_assert_eq!(p.instance_count(), 0);
    }

    /// Determinism: the same load on the same configuration produces
    /// identical statistics.
    #[test]
    fn platform_is_deterministic(l in load()) {
        let run = || {
            let config = PlatformConfig {
                cache_budget: l.cache_mib << 20,
                cores: l.cores as f64,
                ..PlatformConfig::default()
            };
            let mut p = Platform::new(config, workloads::catalog(), GcMode::Vanilla, None);
            let mut sorted = l.arrivals.clone();
            sorted.sort_by_key(|(_, t)| *t);
            for &(f, t_ms) in &sorted {
                p.submit(SimTime(t_ms * 1_000_000), f);
            }
            p.run_until(SimTime(600_000_000_000));
            (
                p.stats().completed,
                p.stats().cold_boots,
                p.stats().warm_starts,
                p.stats().evictions,
                p.cache_used(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}
