//! Std-only scoped-thread worker pool with input-order results.
//!
//! Everything parallel in this workspace runs the same shape of work:
//! a list of self-contained items (figure studies, cluster shards),
//! each computing its result without reading any other item's state.
//! That makes the work embarrassingly parallel, and it makes parallel
//! execution *exactly* reproducible: an item computes the same result
//! no matter which worker runs it or when, and [`run_jobs`] hands the
//! results back in input order, so every downstream consumer — stdout,
//! digests, barrier merges — is byte-identical between `--jobs 1` and
//! `--jobs N`.
//!
//! The pool is std-only: `std::thread::scope` workers pull item
//! indices from a shared atomic counter and write results into
//! per-item slots. This crate exists at the bottom of the dependency
//! graph so that both the figure harnesses (`bench::parallel`) and the
//! sharded cluster engine (`cluster`) can share the one audited
//! threading primitive — the `raw-threads` tidy rule bans
//! `thread::{spawn,scope}` everywhere else.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` over every item on `jobs` worker threads, returning results
/// in input order.
///
/// `jobs <= 1` (or a single item) degenerates to a plain serial loop on
/// the calling thread — exactly the pre-pool behaviour. A worker panic
/// propagates out of the scope and aborts the caller, as it would
/// serially.
pub fn run_jobs<I, T, F>(jobs: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    // Uncontended per-item slots; Mutex (rather than OnceLock) keeps the
    // bound at `T: Send` without requiring `T: Sync`.
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(idx) else { break };
                let result = f(item);
                // tidy:allow(panic-reachability) -- idx came from items.get(); slots is the same length. Poison means a sibling worker already panicked
                let prev = slots[idx].lock().expect("slot lock poisoned").replace(result);
                debug_assert!(prev.is_none(), "two workers claimed item {idx}");
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                // tidy:allow(panic-reachability) -- poison requires a worker panic, which already aborted the scope
                .expect("slot lock poisoned")
                // tidy:allow(panic-reachability) -- the claim counter hands every index to exactly one worker
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_jobs_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let doubled = run_jobs(8, &items, |&i| i * 2);
        assert_eq!(doubled, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_jobs_serial_and_empty_edge_cases() {
        let items = [1, 2, 3];
        assert_eq!(run_jobs(1, &items, |&i| i + 1), vec![2, 3, 4]);
        assert_eq!(run_jobs(0, &items, |&i| i + 1), vec![2, 3, 4]);
        let empty: [u32; 0] = [];
        assert!(run_jobs(4, &empty, |&i| i).is_empty());
    }

    #[test]
    fn run_jobs_works_with_interior_mutability_items() {
        // The cluster engine's usage shape: items carry `&Mutex<T>`
        // slots the worker mutates, results come back in input order.
        let cells: Vec<Mutex<u64>> = (0..32).map(Mutex::new).collect();
        let refs: Vec<&Mutex<u64>> = cells.iter().collect();
        let out = run_jobs(4, &refs, |cell| {
            let mut guard = cell.lock().expect("test lock");
            *guard += 1;
            *guard
        });
        assert_eq!(out, (1..=32).collect::<Vec<u64>>());
    }
}
