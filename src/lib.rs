//! # desiccant-repro — workspace root
//!
//! A Rust reproduction of *Characterization and Reclamation of Frozen
//! Garbage in Managed FaaS Workloads* (EuroSys '24). This root crate
//! only re-exports the workspace so the `examples/` binaries and the
//! cross-crate integration tests in `tests/` have a single import
//! surface; the substance lives in the member crates:
//!
//! * [`simos`] — simulated OS memory substrate;
//! * [`gc_core`] — shared object graph and tracing;
//! * [`hotspot`] / [`v8heap`] — the two managed-heap models;
//! * [`faas_runtime`] — runtime instances;
//! * [`workloads`] — the Table-1 functions;
//! * [`faas`] — the OpenWhisk-like platform;
//! * [`azure_trace`] — trace synthesis and replay;
//! * [`desiccant`] — the paper's contribution;
//! * `bench` — figure harnesses.
//!
//! See `README.md` for a tour and `DESIGN.md` / `EXPERIMENTS.md` for
//! the reproduction methodology and results.

#![forbid(unsafe_code)]

pub use azure_trace;
// `bench` collides with rustc's unstable built-in `bench` path in a
// plain `pub use`; an explicit extern-crate re-export avoids it.
pub extern crate bench;
pub use cpython_heap;
pub use desiccant;
pub use goruntime;
pub use faas;
pub use faas_runtime;
pub use gc_core;
pub use hotspot;
pub use simos;
pub use v8heap;
pub use workloads;
