//! Cross-runtime invariants: properties that must hold identically for
//! the HotSpot and V8 models, exercised through the unified runtime
//! layer.

use desiccant_repro::faas_runtime::{ExecProfile, Instance, Language, RuntimeImage};
use desiccant_repro::gc_core::trace::mark;
use desiccant_repro::simos::{SimDuration, SimTime, System};

fn world(lang: Language) -> (System, Instance) {
    let mut sys = System::new();
    let image = RuntimeImage::openwhisk(lang);
    let libs = image.register_files(&mut sys);
    let inst = Instance::launch(&mut sys, &image, &libs, 256 << 20, 0.14).expect("fits");
    (sys, inst)
}

fn churn(sys: &mut System, inst: &mut Instance, rounds: u64, keep_each: u32) {
    let exec = ExecProfile::default();
    for i in 0..rounds {
        inst.invoke(sys, SimTime(i * 300_000_000), &exec, |ctx| {
            for _ in 0..32 {
                let t = ctx.alloc(48 << 10);
                ctx.handle(t);
            }
            if keep_each > 0 {
                let k = ctx.alloc(keep_each);
                ctx.global(k);
            }
            ctx.work(SimDuration::from_millis(5));
        })
        .expect("sized workload");
    }
}

#[test]
fn reclaim_preserves_live_bytes_exactly() {
    for lang in [Language::Java, Language::JavaScript] {
        let (mut sys, mut inst) = world(lang);
        churn(&mut sys, &mut inst, 20, 64 << 10);
        let live_before = mark(inst.heap().graph(), false, true).live_bytes;
        let report = inst.reclaim(&mut sys, SimTime(10_000_000_000), true).expect("ok");
        let live_after = mark(inst.heap().graph(), false, true).live_bytes;
        assert_eq!(live_before, live_after, "{lang:?}: reclaim lost live data");
        assert_eq!(report.live_bytes, live_before, "{lang:?}: reported live wrong");
    }
}

#[test]
fn reclaim_is_idempotent_on_memory() {
    for lang in [Language::Java, Language::JavaScript] {
        let (mut sys, mut inst) = world(lang);
        churn(&mut sys, &mut inst, 20, 64 << 10);
        inst.reclaim(&mut sys, SimTime(10_000_000_000), true).expect("ok");
        let uss_once = inst.uss(&sys);
        let second = inst.reclaim(&mut sys, SimTime(11_000_000_000), true).expect("ok");
        let uss_twice = inst.uss(&sys);
        assert!(
            uss_twice <= uss_once + 4096,
            "{lang:?}: second reclaim grew memory: {uss_once} -> {uss_twice}"
        );
        // The second reclamation finds nothing substantial to release.
        assert!(
            second.released_bytes < 1 << 20,
            "{lang:?}: second reclaim released {} bytes",
            second.released_bytes
        );
    }
}

#[test]
fn metric_ordering_holds_for_live_instances() {
    for lang in [Language::Java, Language::JavaScript] {
        let (mut sys, mut inst) = world(lang);
        churn(&mut sys, &mut inst, 10, 32 << 10);
        let (u, p, r) = (inst.uss(&sys) as f64, inst.pss(&sys), inst.rss(&sys) as f64);
        assert!(u <= p + 1e-6 && p <= r + 1e-6, "{lang:?}: USS {u} PSS {p} RSS {r}");
    }
}

#[test]
fn instances_keep_working_after_many_reclaim_cycles() {
    for lang in [Language::Java, Language::JavaScript] {
        let (mut sys, mut inst) = world(lang);
        for cycle in 0..5u64 {
            churn(&mut sys, &mut inst, 10, 16 << 10);
            inst.reclaim(&mut sys, SimTime((cycle + 1) * 100_000_000_000), true)
                .expect("ok");
        }
        // Live state from all cycles survived: 5 cycles × 10 keeps.
        let live = mark(inst.heap().graph(), false, true);
        assert!(
            live.live_bytes >= 50 * (16 << 10),
            "{lang:?}: retained state lost across cycles ({} bytes)",
            live.live_bytes
        );
    }
}

#[test]
fn post_reclaim_execution_pays_refaults_but_stays_close() {
    for lang in [Language::Java, Language::JavaScript] {
        let (mut sys, mut inst) = world(lang);
        churn(&mut sys, &mut inst, 30, 0);
        // Warm latency.
        let exec = ExecProfile::default();
        let warm = inst
            .invoke(&mut sys, SimTime(20_000_000_000), &exec, |ctx| {
                for _ in 0..32 {
                    let t = ctx.alloc(48 << 10);
                    ctx.handle(t);
                }
                ctx.work(SimDuration::from_millis(5));
            })
            .expect("ok");
        inst.reclaim(&mut sys, SimTime(30_000_000_000), true).expect("ok");
        let cold = inst
            .invoke(&mut sys, SimTime(40_000_000_000), &exec, |ctx| {
                for _ in 0..32 {
                    let t = ctx.alloc(48 << 10);
                    ctx.handle(t);
                }
                ctx.work(SimDuration::from_millis(5));
            })
            .expect("ok");
        assert!(
            cold.wall_time >= warm.wall_time,
            "{lang:?}: refaults should not make execution faster"
        );
        assert!(
            cold.wall_time.as_nanos() < warm.wall_time.as_nanos() * 2,
            "{lang:?}: post-reclaim overhead should be far below 2x ({} vs {})",
            cold.wall_time,
            warm.wall_time
        );
    }
}
