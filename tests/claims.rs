//! Cross-crate integration tests for the artifact's two major claims
//! (§A.4.1):
//!
//! * **C1** — Desiccant reclaims frozen garbage across environments and
//!   memory configurations (Figures 7, 8, 11, 12).
//! * **C2** — Desiccant improves end-to-end performance under a fixed
//!   memory bound (Figures 9, 10).
//!
//! These run reduced-size versions of the figure protocols; the full
//! harnesses live in `crates/bench/src/bin`.

use desiccant_repro::azure_trace::{build_trace, replay, ReplayConfig};
use desiccant_repro::bench::{run_study, Mode, StudyConfig};
use desiccant_repro::desiccant::{Desiccant, DesiccantConfig};
use desiccant_repro::faas::platform::{GcMode, Platform};
use desiccant_repro::faas::PlatformConfig;
use desiccant_repro::simos::SimDuration;
use desiccant_repro::workloads;

fn quick() -> StudyConfig {
    StudyConfig {
        iterations: 30,
        ..StudyConfig::default()
    }
}

/// C1 on OpenWhisk: for every function, desiccant ≤ eager ≤ vanilla
/// (mapreduce exempt from the eager/vanilla clause, §5.2) and desiccant
/// lands near the ideal.
#[test]
fn c1_reclamation_openwhisk() {
    for spec in workloads::catalog() {
        let vanilla = run_study(&spec, Mode::Vanilla, &quick());
        let eager = run_study(&spec, Mode::Eager, &quick());
        let desiccant = run_study(&spec, Mode::Desiccant, &quick());
        assert!(
            desiccant.final_uss <= eager.final_uss,
            "{}: desiccant {} above eager {}",
            spec.name,
            desiccant.final_uss,
            eager.final_uss
        );
        assert!(
            desiccant.final_uss as f64 <= desiccant.final_ideal as f64 * 1.2,
            "{}: desiccant too far from ideal",
            spec.name
        );
        if spec.name != "mapreduce" {
            assert!(
                eager.final_uss <= vanilla.final_uss * 11 / 10,
                "{}: eager above vanilla",
                spec.name
            );
        }
    }
}

/// C1 on Lambda: reclamation (with the unmap optimization) still works
/// with private libraries, and saves *more* than on OpenWhisk.
#[test]
fn c1_reclamation_lambda() {
    let spec = workloads::by_name("fft").expect("catalog function");
    let ow = quick();
    let lambda = StudyConfig {
        lambda_env: true,
        unmap_libs: true,
        ..ow
    };
    let ow_v = run_study(&spec, Mode::Vanilla, &ow);
    let ow_d = run_study(&spec, Mode::Desiccant, &ow);
    let la_v = run_study(&spec, Mode::Vanilla, &lambda);
    let la_d = run_study(&spec, Mode::Desiccant, &lambda);
    let ow_gain = ow_v.final_uss as f64 / ow_d.final_uss.max(1) as f64;
    let la_gain = la_v.final_uss as f64 / la_d.final_uss.max(1) as f64;
    assert!(la_gain > 1.0 && ow_gain > 1.0);
    assert!(
        la_gain > ow_gain,
        "lambda gain {la_gain:.2} not above openwhisk gain {ow_gain:.2}"
    );
}

/// C1 across memory configurations: fft's reduction grows with the
/// budget (Figure 12d).
#[test]
fn c1_reclamation_across_budgets() {
    let spec = workloads::by_name("fft").expect("catalog function");
    let mut reductions = Vec::new();
    for budget in [256u64 << 20, 1 << 30] {
        let cfg = StudyConfig {
            budget,
            iterations: 30,
            ..StudyConfig::default()
        };
        let v = run_study(&spec, Mode::Vanilla, &cfg);
        let d = run_study(&spec, Mode::Desiccant, &cfg);
        reductions.push(v.final_uss as f64 / d.final_uss.max(1) as f64);
    }
    assert!(
        reductions[1] > reductions[0],
        "fft reduction flat across budgets: {reductions:?}"
    );
}

/// C2: under trace load with a fixed cache, Desiccant reduces cold
/// boots and p99 latency relative to vanilla.
#[test]
fn c2_end_to_end_performance() {
    let catalog = workloads::catalog();
    let trace = build_trace(&catalog, 11);
    let config = ReplayConfig {
        scale: 15.0,
        warmup: SimDuration::from_secs(60),
        duration: SimDuration::from_secs(180),
        ..ReplayConfig::default()
    };
    let mut vanilla = Platform::new(PlatformConfig::default(), catalog.clone(), GcMode::Vanilla, None);
    let v = replay(&mut vanilla, &trace, &config);
    let mut with_d = Platform::new(
        PlatformConfig::default(),
        catalog,
        GcMode::Vanilla,
        Some(Box::new(Desiccant::new(DesiccantConfig::default()))),
    );
    let d = replay(&mut with_d, &trace, &config);
    assert!(
        d.cold_boot_rate < v.cold_boot_rate,
        "cold boots: desiccant {:.3}/s vs vanilla {:.3}/s",
        d.cold_boot_rate,
        v.cold_boot_rate
    );
    assert!(
        d.latency_ms.3 < v.latency_ms.3,
        "p99: desiccant {:.0} vs vanilla {:.0}",
        d.latency_ms.3,
        v.latency_ms.3
    );
    assert!(d.reclaim_cpu_fraction < 0.062, "reclaim CPU above the paper's bound");
    assert!(d.cpu_utilization <= v.cpu_utilization + 1e-9);
}
