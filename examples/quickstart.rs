//! Quickstart: the frozen-garbage problem and Desiccant's reclaim, in
//! sixty lines.
//!
//! Run with `cargo run --example quickstart`.
//!
//! We launch a Java instance, run a function that churns through
//! temporary objects, freeze it, and compare how much memory the frozen
//! instance holds under three treatments: nothing (vanilla), a stock
//! `System.gc()` (eager), and Desiccant's `reclaim` interface. Each
//! treatment gets its own deterministic world so the comparison is
//! apples-to-apples.

use desiccant_repro::faas_runtime::{ExecProfile, Instance, Language, RuntimeImage};
use desiccant_repro::simos::{SimDuration, SimTime, System};

/// Builds a world, churns 50 invocations, and returns it frozen.
fn churned_world() -> (System, Instance) {
    let mut sys = System::new();
    let image = RuntimeImage::openwhisk(Language::Java);
    let libs = image.register_files(&mut sys);
    let mut inst =
        Instance::launch(&mut sys, &image, &libs, 256 << 20, 0.14).expect("budget fits image");
    let exec = ExecProfile::default();
    for i in 0..50 {
        inst.invoke(&mut sys, SimTime(i * 500_000_000), &exec, |ctx| {
            // 4 MiB of request-scoped temporaries...
            for _ in 0..64 {
                let t = ctx.alloc(64 << 10);
                ctx.handle(t);
            }
            // ...and 32 KiB of retained state.
            let keep = ctx.alloc(32 << 10);
            ctx.global(keep);
            ctx.work(SimDuration::from_millis(10));
        })
        .expect("instance sized for this workload");
    }
    (sys, inst)
}

fn main() {
    let mib = |b: u64| b as f64 / (1 << 20) as f64;
    println!("after 50 invocations, the frozen instance holds:");

    let (sys, inst) = churned_world();
    println!("  vanilla USS:          {:6.1} MiB", mib(inst.uss(&sys)));

    // The eager baseline: stock GC at the freeze point.
    let (mut sys, mut inst) = churned_world();
    inst.eager_gc(&mut sys).expect("GC on a healthy heap");
    println!("  after System.gc():    {:6.1} MiB", mib(inst.uss(&sys)));

    // Desiccant's reclaim: GC + resize + release every free page.
    let (mut sys, mut inst) = churned_world();
    let report = inst
        .reclaim(&mut sys, SimTime(60_000_000_000), true)
        .expect("reclaim on a healthy heap");
    println!("  after reclaim:        {:6.1} MiB", mib(inst.uss(&sys)));
    println!(
        "  (released {:.1} MiB; {:.2} MiB live; took {})",
        mib(report.released_bytes),
        mib(report.live_bytes),
        report.wall_time
    );
}
