//! Other runtimes: the paper's §7 discussion, executed.
//!
//! Run with `cargo run --release --example other_runtimes`.
//!
//! §7 argues the frozen-garbage problem exists in any runtime whose
//! memory manager does not promptly return free memory to the OS, and
//! sketches Desiccant for CPython (arena allocator) and Go (spans +
//! lazy scavenger). This example drives both models through a
//! FaaS-shaped workload — invocations leaving garbage behind, then a
//! freeze — and shows what a Desiccant reclaim recovers in each.

use desiccant_repro::cpython_heap::{CPythonConfig, CPythonHeap};
use desiccant_repro::gc_core::ObjectKind;
use desiccant_repro::goruntime::{GoConfig, GoHeap};
use desiccant_repro::hotspot::{G1Config, G1Heap};
use desiccant_repro::simos::System;

const MIB: f64 = (1 << 20) as f64;

fn python() {
    let mut sys = System::new();
    let pid = sys.spawn_process();
    let mut heap = CPythonHeap::new(&mut sys, pid, CPythonConfig::default()).expect("heap");
    // 30 invocations: each retains a little, churns a lot, and leaves a
    // few reference cycles that refcounting cannot free.
    for _ in 0..30 {
        let scope = heap.graph_mut().push_handle_scope();
        // Small allocations (two per 4 KiB pool) with keepers interleaved
        // through the stream: every arena ends up pinned by a few live
        // pools, and the dead pools around them stay resident —
        // obmalloc only unmaps a *fully* empty arena.
        for i in 0..300 {
            let obj = heap.alloc(&mut sys, 1800).expect("alloc");
            if i % 60 == 0 {
                heap.graph_mut().add_global(obj);
            } else {
                heap.graph_mut().add_handle(obj);
            }
        }
        for _ in 0..5 {
            let a = heap.alloc(&mut sys, 1024).expect("alloc");
            heap.graph_mut().add_handle(a);
            let b = heap.alloc(&mut sys, 1024).expect("alloc");
            heap.graph_mut().add_handle(b);
            heap.graph_mut().add_ref(a, b);
            heap.graph_mut().add_ref(b, a);
        }
        heap.graph_mut().pop_handle_scope(scope);
        // Refcounting runs as the locals go out of scope.
        heap.refcount_pass(&mut sys).expect("refcount");
    }
    let frozen = heap.resident_heap_bytes(&sys);
    let out = heap.reclaim(&mut sys).expect("reclaim");
    println!("CPython (obmalloc arenas, refcounting + cycle GC):");
    println!("  frozen instance: {:6.2} MiB resident", frozen as f64 / MIB);
    println!(
        "  after reclaim:   {:6.2} MiB ({:.2} MiB released, {:.2} MiB live)",
        heap.resident_heap_bytes(&sys) as f64 / MIB,
        out.released_bytes as f64 / MIB,
        out.live_bytes as f64 / MIB
    );
}

fn golang() {
    let mut sys = System::new();
    let pid = sys.spawn_process();
    let mut heap = GoHeap::new(&mut sys, pid, GoConfig::default()).expect("heap");
    for _ in 0..30 {
        let scope = heap.graph_mut().push_handle_scope();
        for _ in 0..60 {
            let t = heap.alloc(&mut sys, 16 << 10).expect("alloc");
            heap.graph_mut().add_handle(t);
        }
        let keep = heap.alloc(&mut sys, 8 << 10).expect("alloc");
        heap.graph_mut().add_global(keep);
        heap.graph_mut().pop_handle_scope(scope);
        // No explicit GC: the GOGC pacer decides (and between bursts a
        // frozen instance's pacer never fires).
    }
    let frozen = heap.resident_heap_bytes(&sys);
    let goal = heap.heap_goal();
    let out = heap.reclaim(&mut sys).expect("reclaim");
    println!("Go (spans, GOGC pacer, lazy scavenger):");
    println!(
        "  frozen instance: {:6.2} MiB resident (pacer goal {:.2} MiB — below it, nothing collects)",
        frozen as f64 / MIB,
        goal as f64 / MIB
    );
    println!(
        "  after reclaim:   {:6.2} MiB ({:.2} MiB released, {:.2} MiB live)",
        heap.resident_heap_bytes(&sys) as f64 / MIB,
        out.released_bytes as f64 / MIB,
        out.live_bytes as f64 / MIB
    );
}

fn g1() {
    let mut sys = System::new();
    let pid = sys.spawn_process();
    let mut heap = G1Heap::new(&mut sys, pid, G1Config::for_budget(256 << 20)).expect("heap");
    for _ in 0..30 {
        let scope = heap.graph_mut().push_handle_scope();
        for _ in 0..120 {
            let t = heap.alloc(&mut sys, 64 << 10, ObjectKind::Data).expect("alloc");
            heap.graph_mut().add_handle(t);
        }
        let keep = heap.alloc(&mut sys, 32 << 10, ObjectKind::Data).expect("alloc");
        heap.graph_mut().add_global(keep);
        heap.graph_mut().pop_handle_scope(scope);
    }
    let frozen = heap.resident_heap_bytes(&sys);
    let out = heap.reclaim(&mut sys).expect("reclaim");
    println!("G1 (regional collector, JDK 8 era):");
    println!(
        "  frozen instance: {:6.2} MiB resident (free regions pin the high-water mark)",
        frozen as f64 / MIB
    );
    println!(
        "  after reclaim:   {:6.2} MiB ({:.2} MiB released, {:.2} MiB live)",
        heap.resident_heap_bytes(&sys) as f64 / MIB,
        out.released_bytes as f64 / MIB,
        out.live_bytes as f64 / MIB
    );
}

fn main() {
    println!("# the paper's section 7, executed: frozen garbage beyond serial GC and V8\n");
    python();
    println!();
    golang();
    println!();
    g1();
}
