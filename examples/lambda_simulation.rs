//! Lambda simulation: the §5.4 experiment — Desiccant on a platform
//! that never shares runtime libraries between instances.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example lambda_simulation -- matrix
//! ```
//!
//! Compares the same function on the OpenWhisk flavour (shared
//! libraries) and the Lambda flavour (private libraries, where the
//! §4.6 unmap optimization bites hardest).

use desiccant_repro::bench::{run_study, Mode, StudyConfig};
use desiccant_repro::workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("matrix");
    let spec = workloads::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown function {name:?}");
        std::process::exit(2);
    });
    let mib = |b: u64| b as f64 / (1 << 20) as f64;
    println!("# {} on OpenWhisk vs Lambda (100 iterations)", spec.name);
    for (env, lambda_env) in [("openwhisk", false), ("lambda", true)] {
        let cfg = StudyConfig {
            lambda_env,
            // The unmap optimization is only meaningful where libraries
            // are private; enabling it everywhere shows the contrast.
            unmap_libs: true,
            ..StudyConfig::default()
        };
        let vanilla = run_study(&spec, Mode::Vanilla, &cfg);
        let desiccant = run_study(&spec, Mode::Desiccant, &cfg);
        println!(
            "{env:>10}: vanilla {:6.1} MiB -> desiccant {:6.1} MiB ({:.2}x)",
            mib(vanilla.final_uss),
            mib(desiccant.final_uss),
            vanilla.final_uss as f64 / desiccant.final_uss.max(1) as f64
        );
    }
    println!("# Lambda improves more: every instance pays for private libraries that");
    println!("# Desiccant's unmap optimization can release (paper: 2.08x Java / 2.76x JS mean).");
}
