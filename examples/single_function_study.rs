//! Single-function study: the §3.1 characterization protocol on any
//! Table-1 function.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example single_function_study -- fft
//! cargo run --release --example single_function_study -- file-hash 512
//! ```
//!
//! Arguments: function name (see `workloads::catalog`), optional memory
//! budget in MiB (default 256). Prints the per-iteration memory series
//! for all four treatments plus the Figure-1 ratios.

use desiccant_repro::bench::{run_study, Mode, StudyConfig};
use desiccant_repro::workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("fft");
    let budget_mib: u64 = args
        .get(1)
        .map(|s| s.parse().expect("budget in MiB"))
        .unwrap_or(256);
    let spec = workloads::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown function {name:?}; available:");
        for f in workloads::catalog() {
            eprintln!("  {} ({})", f.name, f.language.name());
        }
        std::process::exit(2);
    });
    let cfg = StudyConfig {
        budget: budget_mib << 20,
        ..StudyConfig::default()
    };
    let vanilla = run_study(&spec, Mode::Vanilla, &cfg);
    let eager = run_study(&spec, Mode::Eager, &cfg);
    let desiccant = run_study(&spec, Mode::Desiccant, &cfg);

    println!(
        "# {} ({}), {} chain stage(s), {} MiB budget",
        spec.name,
        spec.language.name(),
        spec.chain_len,
        budget_mib
    );
    println!("iteration,vanilla_mib,eager_mib,ideal_mib");
    let mib = |b: u64| b as f64 / (1 << 20) as f64;
    for i in (0..vanilla.uss.len()).step_by(5) {
        println!(
            "{},{:.2},{:.2},{:.2}",
            i + 1,
            mib(vanilla.uss[i]),
            mib(eager.uss[i]),
            mib(vanilla.ideal[i])
        );
    }
    println!();
    println!(
        "final USS: vanilla {:.1} MiB, eager {:.1} MiB, desiccant {:.1} MiB, ideal {:.1} MiB",
        mib(vanilla.final_uss),
        mib(eager.final_uss),
        mib(desiccant.final_uss),
        mib(desiccant.final_ideal)
    );
    println!(
        "frozen-garbage ratios (vanilla): avg {:.2}, max {:.2}",
        vanilla.avg_ratio(),
        vanilla.max_ratio()
    );
    println!(
        "desiccant reduction: {:.2}x vs vanilla, {:.2}x vs eager",
        vanilla.final_uss as f64 / desiccant.final_uss.max(1) as f64,
        eager.final_uss as f64 / desiccant.final_uss.max(1) as f64
    );
}
