//! Trace replay: the §5.3 end-to-end experiment on one command line.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example trace_replay -- 15
//! cargo run --release --example trace_replay -- 25 eager
//! ```
//!
//! Arguments: scale factor (default 15), optional mode
//! (`vanilla` | `eager` | `desiccant`; default compares all three).
//! Replays a synthetic Azure-style trace against the platform and
//! prints the Figure-9/10 metrics.

use desiccant_repro::azure_trace::{build_trace, replay, ReplayConfig};
use desiccant_repro::desiccant::{Desiccant, DesiccantConfig};
use desiccant_repro::faas::platform::{GcMode, Platform};
use desiccant_repro::faas::{MemoryManager, PlatformConfig};
use desiccant_repro::workloads;

fn run(scale: f64, mode: &str) {
    let catalog = workloads::catalog();
    let trace = build_trace(&catalog, 11);
    let manager: Option<Box<dyn MemoryManager>> = if mode == "desiccant" {
        Some(Box::new(Desiccant::new(DesiccantConfig::default())))
    } else {
        None
    };
    let gc = if mode == "eager" { GcMode::Eager } else { GcMode::Vanilla };
    let mut p = Platform::new(PlatformConfig::default(), catalog, gc, manager);
    let out = replay(&mut p, &trace, &ReplayConfig { scale, ..ReplayConfig::default() });
    let (p50, p90, p95, p99) = out.latency_ms;
    println!(
        "{mode:>10}: {:>5} requests, {:.2} cold boots/s, {:.1} req/s, cpu {:.0}%, reclaim cpu {:.1}%, p50/p90/p95/p99 = {:.0}/{:.0}/{:.0}/{:.0} ms",
        out.completed,
        out.cold_boot_rate,
        out.throughput,
        out.cpu_utilization * 100.0,
        out.reclaim_cpu_fraction * 100.0,
        p50,
        p90,
        p95,
        p99
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = args
        .first()
        .map(|s| s.parse().expect("scale factor"))
        .unwrap_or(15.0);
    println!("# synthetic Azure trace, scale factor {scale}, 60s warm-up + 180s replay");
    match args.get(1) {
        Some(mode) => run(scale, mode),
        None => {
            for mode in ["vanilla", "eager", "desiccant"] {
                run(scale, mode);
            }
        }
    }
}
